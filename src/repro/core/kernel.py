"""Array-based TSBUILD scoring kernel: flat, integer-indexed partition state.

:class:`KernelPartition` mirrors :class:`repro.core.partition.MergePartition`
semantics exactly -- same sufficient statistics, same merge algebra, same
floating-point accumulation order -- but stores the synopsis in flat,
integer-indexed structures so the scoring hot path
(:meth:`KernelPartition._eval_raw`) runs tight loops over contiguous
buffers with no per-edge dict or tuple allocation:

* stable classes are densely numbered ``0..N-1`` (``build_stable`` already
  emits dense ids; cluster ids are a shrinking subset, so every per-class
  and per-cluster table below is a flat length-``N`` buffer);
* ``gs`` (the grouped stable out-adjacency) is a CSR layout --
  ``array('l')`` index + ``array('d')`` data with per-row live lengths
  (rows only ever shrink as targets collapse); :meth:`csr_arrays` exposes
  numpy views of the buffers when numpy is available;
* ``out_stats`` is a pair of parallel sum / sum-of-squares arrays keyed by
  an open-addressed ``(cluster, target) -> slot`` table (a CPython dict on
  packed ``target * N + cluster`` integer keys -- CPython's dict *is* an
  open-addressed hash table; target-major so the scorer's parent-dim
  probes share one per-call base instead of a per-parent multiply), plus
  a per-cluster slot list that preserves
  the dict path's dimension order (insertion order is load-bearing: it
  fixes the floating-point summation order);
* ``count`` / ``cluster_sq`` / ``s_count`` / owner are dense arrays;
* each cluster keeps an **in-edge transpose** (``in_src[c]`` /
  ``in_k[c]``: source ids and their grouped counts toward ``c``), which
  replaces the dict path's two-``dict.get``-per-source inner loop -- the
  dominant cost of large builds -- with one scatter into an epoch-stamped
  scratch buffer and one flat read per source.

Two structures deliberately stay as Python objects:

* ``in_sources`` / ``members`` remain plain sets with the *same
  construction history* as the dict path.  The scorer iterates
  ``in_sources[u] | in_sources[v]``, and a set's iteration order is a
  hash-table artifact of its operation history -- the only way to
  reproduce the reference accumulation order bit-for-bit is to perform
  the identical set operations;
* ``version`` / ``struct_version`` / ``cluster_label`` / ``cluster_depth``
  remain dicts: they are the external contract that
  :mod:`repro.core.build` and :mod:`repro.core.pool` share across both
  partition implementations (heap staleness stamps, memo keys, pool
  grouping).

Hot reads use CPython lists rather than ``array``/numpy buffers: an
``array('d')`` element access boxes a fresh float object on every read,
and numpy reductions (``np.sum`` is pairwise, not left-associated) are
unusable wherever bit-exactness against the reference scorer is required.
The CSR buffers are only walked inside ``apply_merge`` (cold relative to
scoring), where the boxing cost is irrelevant.

Bit-exactness proof obligations (enforced by
tests/test_build_equivalence.py and tests/test_kernel_state.py):

* ``_eval_raw`` reproduces ``evaluate_merge_reference`` '' ``(errd,
  sized)`` bitwise on every pair: identical merged-dimension insertion
  order, identical source-union iteration order, identical first-touch
  parent order, left-associated products (``sc*k*k`` reuses ``t = sc*k``);
* ``apply_merge`` leaves every table bitwise-equal to the dict path's
  (state-sync oracle over randomized merge sequences).
"""

from __future__ import annotations

from array import array
from itertools import islice
from typing import Dict, List, Optional, Set, Tuple

from repro.core.npsupport import get_numpy, np_index_dtype
from repro.core.partition import MergeResult, ScoredMerge
from repro.core.size import EDGE_BYTES, NODE_BYTES
from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch

#: Pairs whose combined in-source count is below this are scored by the
#: scalar ``_eval_raw`` even inside a vectorized block: the vector path
#: pays a per-pair marshalling cost (set-union materialization via
#: ``np.fromiter``, combined-count scatter, ~15 numpy kernel launches)
#: that only amortizes once the source union is very large, because the
#: vectorized segment is just the source loop -- the out-dims and
#: parent-collapse phases stay scalar either way.  Purely a speed knob
#: (bitwise-identical); the measured XMark break-even for a cold
#: singleton is ~2800 sources, so the floor sits at the giant-union
#: tail (docs/PERFORMANCE.md "Block-vectorized merge scoring").
MIN_VECTOR_SOURCES = 1536

#: Bounded size of the per-pair source-union cache (see ``_pair_sources``).
#: On overflow the oldest half is dropped (dict insertion order).
PAIR_CACHE_CAP = 8192


class KernelPartition:
    """Flat-array twin of :class:`MergePartition` (same merge semantics).

    Requires densely numbered stable classes (``0..N-1``); raises
    ``ValueError`` otherwise so ``TSBuildOptions(kernel="auto")`` can fall
    back to the dict path for hand-built sparse summaries.
    """

    def __init__(self, stable: StableSummary) -> None:
        ids = list(stable.node_ids())
        n = len(ids)
        if sorted(ids) != list(range(n)):
            raise ValueError(
                "KernelPartition requires dense stable ids 0..N-1 "
                "(use kernel='dicts' for sparse summaries)"
            )
        self.stable = stable
        self._n = n

        # Dense per-stable-class state.
        self.s_count: List[int] = [stable.count[i] for i in range(n)]
        self.s_label: Dict[int, str] = dict(stable.label)
        self.s_depth: Dict[int, int] = dict(stable.depth)
        self.owner: List[int] = list(range(n))  # dense twin of ``assign``

        # Cluster state; initially one cluster per stable class (same ids).
        # The dicts mirror MergePartition's construction history exactly --
        # their iteration order is observable (to_treesketch node order,
        # pool grouping).
        self.members: Dict[int, Set[int]] = {nid: {nid} for nid in ids}
        self.count: List[int] = [stable.count[i] for i in range(n)]
        self.cluster_label: Dict[int, str] = dict(stable.label)
        self.cluster_depth: Dict[int, int] = dict(stable.depth)
        self.assign: Dict[int, int] = {nid: nid for nid in ids}

        # --- gs as CSR: array('l') index + array('d') data. -------------
        indptr = array("l", [0] * (n + 1))
        col_chunks: List[int] = []
        val_chunks: List[float] = []
        pos = 0
        for s in range(n):
            row = stable.out.get(s, {})
            for dst, k in row.items():
                col_chunks.append(dst)
                val_chunks.append(float(k))
            pos += len(row)
            indptr[s + 1] = pos
        self._gs_indptr = indptr
        self._gs_col = array("l", col_chunks)
        self._gs_val = array("d", val_chunks)
        # Live row lengths: rows shrink in place as targets collapse.
        self._gs_len = array(
            "l", [indptr[s + 1] - indptr[s] for s in range(n)]
        )

        # Reverse index (sets: identical construction history to the dict
        # path -- set-union iteration order in the scorer depends on it).
        self.in_sources: Dict[int, Set[int]] = {nid: set() for nid in ids}
        for src, dst, _ in stable.edges():
            self.in_sources[dst].add(src)

        # In-edge transpose per cluster: sources and their grouped counts.
        self.in_src: List[Optional[List[int]]] = [[] for _ in range(n)]
        self.in_k: List[Optional[List[float]]] = [[] for _ in range(n)]
        for src, dst, k in stable.edges():
            self.in_src[dst].append(src)
            self.in_k[dst].append(float(k))

        # --- out_stats: parallel sum/sum-sq arrays + slot table. ---------
        # slot_of maps packed (target * n + cluster) -> slot index into the
        # parallel arrays; out_slots[c] lists c's live slots in dimension
        # order (== the dict path's insertion order).
        self.stat_sum: List[float] = []
        self.stat_sq: List[float] = []
        self.stat_tgt: List[int] = []
        self.slot_of: Dict[int, int] = {}
        self._free: List[int] = []
        self.out_slots: List[Optional[List[int]]] = [None] * n
        for c in range(n):
            count = self.s_count[c]
            slots: List[int] = []
            for dst, k in stable.out.get(c, {}).items():
                slot = len(self.stat_sum)
                self.stat_sum.append(count * float(k))
                self.stat_sq.append(count * float(k) ** 2)
                self.stat_tgt.append(dst)
                self.slot_of[dst * n + c] = slot
                slots.append(slot)
            self.out_slots[c] = slots

        self.cluster_sq: List[float] = [0.0] * n
        self.num_edges: int = stable.num_edges
        self.total_sq: float = 0.0

        # Version stamps (external contract shared with the dict path):
        # ``version`` bumps on every state change touching a cluster's
        # score inputs; ``struct_version`` only on child-side changes
        # (own dims / count), the part the pool's structural key reads.
        self.version: Dict[int, int] = {nid: 0 for nid in ids}
        self.struct_version: Dict[int, int] = {nid: 0 for nid in ids}

        # Versioned memo of merge scores (see enable_memo).
        self.merge_memo: Optional[
            Dict[Tuple[int, int], Tuple[int, int, float, float, int]]
        ] = None
        self.memo_hits: int = 0
        self.memo_misses: int = 0

        # Epoch-stamped scratch buffers: merged dims (by target), combined
        # source counts (by stable class), parent accumulators (by cluster).
        # One epoch bump invalidates all three in O(1).
        self._epoch: int = 0
        self._m_stamp: List[int] = [0] * n
        self._m_sum: List[float] = [0.0] * n
        self._m_sq: List[float] = [0.0] * n
        self._k_stamp: List[int] = [0] * n
        self._kk: List[float] = [0.0] * n
        self._p_stamp: List[int] = [0] * n
        self._p_sum: List[float] = [0.0] * n
        self._p_sq: List[float] = [0.0] * n

        # Source-side version stamps for the block scorer's caches: bump
        # only when a cluster's in-edge state (``in_sources[c]`` /
        # ``in_src[c]`` / ``in_k[c]``) is rebuilt -- which ``apply_merge``
        # does for the surviving cluster alone (``_collapse_row`` touches
        # other rows' entries *toward* u/v, never another cluster's
        # transpose).  Distinct from ``version`` (score inputs) and
        # ``struct_version`` (child-side state).
        self._src_version: List[int] = [0] * n

        # Vectorized block scoring (``enable_vector_blocks``): numpy
        # module handle, dense float mirror of ``s_count``, dense owner
        # mirror, a size-n scatter buffer for combined source counts,
        # per-cluster numpy copies of the in-edge transpose, and the
        # bounded per-pair source-union cache.  All ``None``/empty until
        # enabled, so the scalar paths carry zero overhead.
        self._np = None
        self._np_scnt = None
        self._np_owner = None
        self._np_kkbuf = None
        self._np_in: List[Optional[tuple]] = []
        self._pair_cache: Dict[Tuple[int, int], tuple] = {}

    # ------------------------------------------------------------------
    # Size and quality
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.members)

    def size_bytes(self) -> int:
        return NODE_BYTES * self.num_nodes + EDGE_BYTES * self.num_edges

    def alive(self, cid: int) -> bool:
        return cid in self.members

    def parents_of(self, cid: int) -> Set[int]:
        """Clusters with at least one edge into ``cid``."""
        owner = self.owner
        return {owner[s] for s in self.in_sources[cid]}

    def structural_key(self, cid: int) -> Tuple[float, float, int]:
        """CREATEPOOL's cheap locality key (same floats as the dict path)."""
        slots = self.out_slots[cid]
        stat_sum = self.stat_sum
        total = 0.0
        for slot in slots:
            total += stat_sum[slot]
        count = self.count[cid]
        return (len(slots), total / max(1, count), count)

    # ------------------------------------------------------------------
    # Candidate scoring
    # ------------------------------------------------------------------

    def evaluate_merge(self, u: int, v: int) -> MergeResult:
        """Score merging clusters ``u`` and ``v`` without applying it."""
        errd, sized = self._eval_raw(u, v)
        return MergeResult(errd, sized)

    def _eval_raw(self, u: int, v: int) -> Tuple[float, int]:
        """Hot-path scoring core, bit-identical to the reference scorer.

        Same accumulation structure as ``MergePartition._eval_raw`` with
        every dict/tuple replaced by a flat read: v's dimensions are
        scattered into the epoch-stamped ``_m_*`` scratch, then one walk
        over u's dimensions and a remainder walk over v's emit each merged
        dimension's closed-form contribution in exactly the dict path's
        insertion order (u's dims first, v-only dims after, overlaps
        combined as ``st + acc``); the source loop reads pre-combined
        counts ``k_u + k_v`` scattered from the in-edge transpose into
        ``_kk``; parent accumulators land in ``_p_*`` in first-touch
        order.
        """
        if u == v:
            raise ValueError("cannot merge a cluster with itself")
        cnt = self.count
        count_w = cnt[u] + cnt[v]
        slots_u = self.out_slots[u]
        slots_v = self.out_slots[v]
        stat_tgt = self.stat_tgt
        stat_sum = self.stat_sum
        stat_sq = self.stat_sq
        self._epoch = epoch = self._epoch + 1

        # --- out dimensions toward targets outside {u, v}: additive.
        # Fused: scatter v's dims, then emit each merged dimension's
        # closed-form contribution during a single walk over u's dims
        # (overlaps combined as ``st + acc`` -- v's value + u's, the
        # reference operand order -- and their stamps cleared), followed
        # by v's un-consumed remainder.  The floating-point adds into
        # ``sq_new_w`` happen in exactly the dict path's insertion order:
        # u's dims first, v-only dims after.
        m_stamp = self._m_stamp
        m_sum = self._m_sum
        m_sq = self._m_sq
        for slot in slots_v:
            t = stat_tgt[slot]
            if t == u or t == v:
                continue
            m_stamp[t] = epoch
            m_sum[t] = stat_sum[slot]
            m_sq[t] = stat_sq[slot]
        sq_new_w = 0.0
        out_edges_new = 0
        for slot in slots_u:
            t = stat_tgt[slot]
            if t == u or t == v:
                continue
            out_edges_new += 1
            if m_stamp[t] == epoch:
                m_stamp[t] = 0  # consumed: skip in the remainder walk
                s_ = m_sum[t] + stat_sum[slot]
                sq_new_w += (m_sq[t] + stat_sq[slot]) - (s_ * s_) / count_w
            else:
                s_ = stat_sum[slot]
                sq_new_w += stat_sq[slot] - (s_ * s_) / count_w
        for slot in slots_v:
            t = stat_tgt[slot]
            if t == u or t == v:
                continue
            if m_stamp[t] == epoch:
                out_edges_new += 1
                s_ = m_sum[t]
                sq_new_w += m_sq[t] - (s_ * s_) / count_w

        # --- scatter combined source counts k_u + k_v into scratch.
        k_stamp = self._k_stamp
        kk = self._kk
        for s, k in zip(self.in_src[u], self.in_k[u]):
            k_stamp[s] = epoch
            kk[s] = k
        for s, k in zip(self.in_src[v], self.in_k[v]):
            if k_stamp[s] == epoch:
                kk[s] = kk[s] + k  # k_u + k_v, reference operand order
            else:
                k_stamp[s] = epoch
                kk[s] = k

        # --- self dimension toward w and parent dims, one source pass.
        sources = self.in_sources[u] | self.in_sources[v]
        owner = self.owner
        s_cnt = self.s_count
        p_stamp = self._p_stamp
        p_sum = self._p_sum
        p_sq = self._p_sq
        p_order: List[int] = []
        p_append = p_order.append
        sum_w = sq_w = 0.0
        has_self = False
        for s in sources:
            k = kk[s]
            p = owner[s]
            t = s_cnt[s] * k
            if p == u or p == v:
                sum_w += t
                sq_w += t * k
                has_self = True
            elif p_stamp[p] == epoch:
                p_sum[p] += t
                p_sq[p] += t * k
            else:
                p_stamp[p] = epoch
                p_sum[p] = t
                p_sq[p] = t * k
                p_append(p)

        if has_self:
            sq_new_w += sq_w - (sum_w * sum_w) / count_w
            out_edges_new += 1
        cluster_sq = self.cluster_sq
        errd = sq_new_w - cluster_sq[u] - cluster_sq[v]

        # --- parent dimensions: ->u and ->v collapse into ->w.  Keys are
        # target-major, so both probes share a per-call base.
        slot_get = self.slot_of.get
        n = self._n
        base_u = u * n
        base_v = v * n
        in_edges_removed = 0
        for p in p_order:
            count_p = cnt[p]
            old_sq = 0.0
            old_dims = 0
            slot = slot_get(base_u + p)
            if slot is not None:
                s_ = stat_sum[slot]
                old_sq += stat_sq[slot] - (s_ * s_) / count_p
                old_dims += 1
            slot = slot_get(base_v + p)
            if slot is not None:
                s_ = stat_sum[slot]
                old_sq += stat_sq[slot] - (s_ * s_) / count_p
                old_dims += 1
            a0 = p_sum[p]
            errd += (p_sq[p] - (a0 * a0) / count_p) - old_sq
            in_edges_removed += old_dims - 1

        out_edges_old = len(slots_u) + len(slots_v)
        edges_removed = (out_edges_old - out_edges_new) + in_edges_removed
        return errd, NODE_BYTES + EDGE_BYTES * edges_removed

    # ------------------------------------------------------------------
    # Versioned score memoization (same discipline as the dict path)
    # ------------------------------------------------------------------

    def enable_memo(self) -> None:
        if self.merge_memo is None:
            self.merge_memo = {}

    def scored_merge(self, u: int, v: int) -> ScoredMerge:
        """Memo-aware scoring: ``(ratio, errd, sized)`` for merging u, v."""
        memo = self.merge_memo
        if memo is None:
            errd, sized = self._eval_raw(u, v)
            return (
                errd / sized if sized > 0 else float("inf"),
                errd,
                sized,
            )
        version = self.version
        ver_u = version.get(u, 0)
        ver_v = version.get(v, 0)
        key = (u, v)
        entry = memo.get(key)
        if entry is not None and entry[0] == ver_u and entry[1] == ver_v:
            self.memo_hits += 1
            return entry[2], entry[3], entry[4]
        self.memo_misses += 1
        errd, sized = self._eval_raw(u, v)
        ratio = errd / sized if sized > 0 else float("inf")
        memo[key] = (ver_u, ver_v, ratio, errd, sized)
        return ratio, errd, sized

    # ------------------------------------------------------------------
    # Vectorized block scoring (kernel="numpy")
    # ------------------------------------------------------------------

    @property
    def vector_blocks(self) -> bool:
        """Whether :meth:`eval_block` vectorizes (numpy path enabled)."""
        return self._np is not None

    def enable_vector_blocks(self) -> bool:
        """Switch :meth:`eval_block` to the numpy path; returns success.

        Captures the numpy module once (``REPRO_NO_NUMPY`` is honoured at
        enable time, so a build never flips backend -- or raises an
        ImportError -- mid-flight).  Returns ``False`` and leaves the
        scalar path in place when numpy is unavailable.
        """
        if self._np is not None:
            return True
        np = get_numpy()
        if np is None:
            return False
        n = self._n
        self._np = np
        self._idt = np_index_dtype(np)
        # Float mirror of s_count: int-to-double conversion is exact for
        # element counts, and pre-converting keeps the hot gather float64.
        self._np_scnt = np.array(self.s_count, dtype=np.float64)
        self._np_owner = np.array(self.owner, dtype=self._idt)
        self._np_kkbuf = np.zeros(n, dtype=np.float64)
        self._np_in = [None] * n
        return True

    def _cluster_in(self, np, c: int):
        """Numpy copies of cluster ``c``'s in-edge transpose, cached under
        its source-side version stamp."""
        ver = self._src_version[c]
        ent = self._np_in[c]
        if ent is not None and ent[0] == ver:
            return ent[1], ent[2]
        src = np.array(self.in_src[c], dtype=self._idt)
        k = np.array(self.in_k[c], dtype=np.float64)
        self._np_in[c] = (ver, src, k)
        return src, k

    def _pair_sources(self, np, u: int, v: int):
        """``(srcs, kk, t, tk)`` for a pair: the source union in its exact
        set-iteration order, combined counts ``k_u + k_v`` aligned to it,
        and the derived ``s_count*k`` / ``s_count*k*k`` products.

        The union's iteration order is a hash-table artifact of the two
        live set objects, so it is materialized from the real
        ``in_sources[u] | in_sources[v]`` (never reconstructed
        numerically) -- that order fixes the scorer's floating-point
        accumulation order.  Both the order and the counts change only
        when a cluster's in-edge state is rebuilt, so entries are cached
        under the ``_src_version`` stamps (bounded; oldest half evicted).
        """
        sv = self._src_version
        ver_u, ver_v = sv[u], sv[v]
        cache = self._pair_cache
        key = (u, v)
        hit = cache.get(key)
        if hit is not None and hit[0] == ver_u and hit[1] == ver_v:
            return hit[2], hit[3], hit[4], hit[5]
        union = self.in_sources[u] | self.in_sources[v]
        srcs = np.fromiter(union, dtype=self._idt, count=len(union))
        src_u, k_u = self._cluster_in(np, u)
        src_v, k_v = self._cluster_in(np, v)
        buf = self._np_kkbuf
        # Sources unique within each transpose, so fancy-index += is safe;
        # (0.0 + k_u) + k_v reproduces the scalar scatter's operand order
        # (u's count first) bitwise -- counts are strictly positive, so
        # the 0.0 seed is exact.
        buf[srcs] = 0.0
        buf[src_u] += k_u
        buf[src_v] += k_v
        kk = buf[srcs]
        t = self._np_scnt[srcs] * kk
        tk = t * kk
        if len(cache) >= PAIR_CACHE_CAP:
            for old in list(islice(iter(cache), PAIR_CACHE_CAP // 2)):
                del cache[old]
        cache[key] = (ver_u, ver_v, srcs, kk, t, tk)
        return srcs, kk, t, tk

    def _outdims_scalar(self, u: int, v: int,
                        count_w: int) -> Tuple[float, int]:
        """Phase one of ``_eval_raw`` (out-dims toward targets outside
        ``{u, v}``), verbatim: ``(sq_new_w, out_edges_new)``.

        Kept as a separate copy so the scalar ``_eval_raw`` hot path pays
        no extra function call; the block scorer combines this with the
        vectorized source pass in exactly the reference operation order.
        """
        slots_u = self.out_slots[u]
        slots_v = self.out_slots[v]
        stat_tgt = self.stat_tgt
        stat_sum = self.stat_sum
        stat_sq = self.stat_sq
        self._epoch = epoch = self._epoch + 1
        m_stamp = self._m_stamp
        m_sum = self._m_sum
        m_sq = self._m_sq
        for slot in slots_v:
            t = stat_tgt[slot]
            if t == u or t == v:
                continue
            m_stamp[t] = epoch
            m_sum[t] = stat_sum[slot]
            m_sq[t] = stat_sq[slot]
        sq_new_w = 0.0
        out_edges_new = 0
        for slot in slots_u:
            t = stat_tgt[slot]
            if t == u or t == v:
                continue
            out_edges_new += 1
            if m_stamp[t] == epoch:
                m_stamp[t] = 0
                s_ = m_sum[t] + stat_sum[slot]
                sq_new_w += (m_sq[t] + stat_sq[slot]) - (s_ * s_) / count_w
            else:
                s_ = stat_sum[slot]
                sq_new_w += stat_sq[slot] - (s_ * s_) / count_w
        for slot in slots_v:
            t = stat_tgt[slot]
            if t == u or t == v:
                continue
            if m_stamp[t] == epoch:
                out_edges_new += 1
                s_ = m_sum[t]
                sq_new_w += m_sq[t] - (s_ * s_) / count_w
        return sq_new_w, out_edges_new

    def eval_block(self, pairs: List[Tuple[int, int]],
                   min_sources: Optional[int] = None) -> List[Tuple[float, int]]:
        """``(errd, sized)`` per pair, bitwise-equal to per-pair
        ``_eval_raw`` calls.

        Serial unless :meth:`enable_vector_blocks` succeeded; with the
        numpy path on, pairs whose source union is at least
        ``min_sources`` (default ``MIN_VECTOR_SOURCES``) are scored in
        one vectorized pass (small pairs stay scalar -- per-pair setup
        overhead would eat the win; a lone large pair still wins).
        Callers that pre-filter their pairs by size (the drain loop's
        block refresh admits only unions past ``REFRESH_MIN_SOURCES``)
        pass ``min_sources=0`` to vectorize everything they collected.
        Routing never changes a bit of the output, only the speed
        (tests/test_block_scoring.py).
        """
        np = self._np
        if np is None:
            raw = self._eval_raw
            return [raw(u, v) for u, v in pairs]
        if min_sources is None:
            min_sources = MIN_VECTOR_SOURCES
        in_sources = self.in_sources
        raw = self._eval_raw
        out: List[Optional[Tuple[float, int]]] = [None] * len(pairs)
        vec_idx: List[int] = []
        vec_pairs: List[Tuple[int, int]] = []
        for i, (u, v) in enumerate(pairs):
            if len(in_sources[u]) + len(in_sources[v]) >= min_sources:
                vec_idx.append(i)
                vec_pairs.append((u, v))
            else:
                out[i] = raw(u, v)
        if vec_pairs:
            for i, score in zip(vec_idx, self._eval_block_np(np, vec_pairs)):
                out[i] = score
        return out

    def _eval_block_np(self, np, pairs: List[Tuple[int, int]]):
        """The vectorized scoring core: one pass over all pairs' sources.

        The dominant source-union loop of ``_eval_raw`` is flattened
        across the block and driven through ``np.add.at`` -- unbuffered,
        so repeated indices accumulate *in operand order*, which makes
        every per-pair and per-parent sum sequence identical to the
        scalar loop's (the same guarantee estimate_selectivity_batch
        already builds on).  Parent first-touch order is recovered from
        ``np.unique(..., return_index=True)`` (stable: first occurrence)
        sorted by first flat index; the out-dims and parent-collapse
        phases remain scalar per pair (small, slot-table bound).
        """
        n = self._n
        nb = len(pairs)
        idt = self._idt
        per_src: List = []
        per_t: List = []
        per_tk: List = []
        lens = np.empty(nb, dtype=idt)
        us = np.empty(nb, dtype=idt)
        vs = np.empty(nb, dtype=idt)
        pair_sources = self._pair_sources
        for i, (u, v) in enumerate(pairs):
            if u == v:
                raise ValueError("cannot merge a cluster with itself")
            srcs, _kk, t, tk = pair_sources(np, u, v)
            per_src.append(srcs)
            per_t.append(t)
            per_tk.append(tk)
            lens[i] = len(srcs)
            us[i] = u
            vs[i] = v
        flat_src = np.concatenate(per_src)
        flat_t = np.concatenate(per_t)
        flat_tk = np.concatenate(per_tk)
        pid = np.repeat(np.arange(nb, dtype=idt), lens)
        own = self._np_owner[flat_src]

        # Self dimension: sources owned by u or v, summed sequentially
        # per pair (flat order == each pair's union order).
        self_mask = (own == us[pid]) | (own == vs[pid])
        sw = np.zeros(nb, dtype=np.float64)
        sqw = np.zeros(nb, dtype=np.float64)
        sid = pid[self_mask]
        np.add.at(sw, sid, flat_t[self_mask])
        np.add.at(sqw, sid, flat_tk[self_mask])
        has_self = np.zeros(nb, dtype=bool)
        has_self[sid] = True

        # Parent accumulators keyed (pair, owner), compacted via unique;
        # add.at keeps each (pair, parent) sum in flat (reference) order.
        pm = ~self_mask
        keys = pid[pm] * n + own[pm]
        uniq, first = np.unique(keys, return_index=True)
        comp = np.searchsorted(uniq, keys)
        psum = np.zeros(len(uniq), dtype=np.float64)
        psq = np.zeros(len(uniq), dtype=np.float64)
        np.add.at(psum, comp, flat_t[pm])
        np.add.at(psq, comp, flat_tk[pm])
        order = np.argsort(first)  # global first-touch order, pair-grouped
        okeys = uniq[order]
        opair = okeys // n
        bounds = np.searchsorted(opair, np.arange(nb + 1))

        # Python-land reads: .tolist() yields plain floats/ints, so memo
        # entries stay JSON-exportable and all downstream arithmetic runs
        # on the same C doubles the scalar path produces.
        sw_l = sw.tolist()
        sqw_l = sqw.tolist()
        has_l = has_self.tolist()
        psum_l = psum[order].tolist()
        psq_l = psq[order].tolist()
        par_l = (okeys - opair * n).tolist()
        bounds_l = bounds.tolist()

        cnt = self.count
        cluster_sq = self.cluster_sq
        slot_get = self.slot_of.get
        stat_sum = self.stat_sum
        stat_sq = self.stat_sq
        out_slots = self.out_slots
        outdims = self._outdims_scalar
        out: List[Tuple[float, int]] = []
        lo = bounds_l[0]
        for i, (u, v) in enumerate(pairs):
            count_w = cnt[u] + cnt[v]
            sq_new_w, out_edges_new = outdims(u, v, count_w)
            if has_l[i]:
                s_ = sw_l[i]
                sq_new_w += sqw_l[i] - (s_ * s_) / count_w
                out_edges_new += 1
            errd = sq_new_w - cluster_sq[u] - cluster_sq[v]
            base_u = u * n
            base_v = v * n
            in_edges_removed = 0
            hi = bounds_l[i + 1]
            for j in range(lo, hi):
                p = par_l[j]
                count_p = cnt[p]
                old_sq = 0.0
                old_dims = 0
                slot = slot_get(base_u + p)
                if slot is not None:
                    s_ = stat_sum[slot]
                    old_sq += stat_sq[slot] - (s_ * s_) / count_p
                    old_dims += 1
                slot = slot_get(base_v + p)
                if slot is not None:
                    s_ = stat_sum[slot]
                    old_sq += stat_sq[slot] - (s_ * s_) / count_p
                    old_dims += 1
                a0 = psum_l[j]
                errd += (psq_l[j] - (a0 * a0) / count_p) - old_sq
                in_edges_removed += old_dims - 1
            lo = hi
            out_edges_old = len(out_slots[u]) + len(out_slots[v])
            edges_removed = (out_edges_old - out_edges_new) + in_edges_removed
            out.append((errd, NODE_BYTES + EDGE_BYTES * edges_removed))
        return out

    # ------------------------------------------------------------------
    # Applying a merge
    # ------------------------------------------------------------------

    def _collapse_row(self, s: int, u: int, v: int) -> float:
        """Collapse row ``s``'s entries toward ``u``/``v`` into one ``u``
        entry; returns the combined count ``k_u + k_v`` (0.0 if neither
        target present).  Row order is not observable, so removal is by
        swap-compaction."""
        base = self._gs_indptr[s]
        length = self._gs_len[s]
        col = self._gs_col
        val = self._gs_val
        iu = iv = -1
        for i in range(base, base + length):
            c = col[i]
            if c == u:
                iu = i
            elif c == v:
                iv = i
        if iu >= 0:
            k = val[iu] + (val[iv] if iv >= 0 else 0.0)
            val[iu] = k
            if iv >= 0:
                last = base + length - 1
                col[iv] = col[last]
                val[iv] = val[last]
                self._gs_len[s] = length - 1
            return k
        if iv >= 0:
            k = 0.0 + val[iv]
            col[iv] = u
            val[iv] = k
            return k
        return 0.0

    def _alloc_slot(self, packed: int, tgt: int, s: float, sq: float) -> int:
        free = self._free
        if free:
            slot = free.pop()
            self.stat_sum[slot] = s
            self.stat_sq[slot] = sq
            self.stat_tgt[slot] = tgt
        else:
            slot = len(self.stat_sum)
            self.stat_sum.append(s)
            self.stat_sq.append(sq)
            self.stat_tgt.append(tgt)
        self.slot_of[packed] = slot
        return slot

    def apply_merge(self, u: int, v: int) -> int:
        """Merge cluster ``v`` into cluster ``u``; returns the merged id.

        Step for step the dict path's ``apply_merge``, with the CSR /
        slot-table updates in place of dict mutation.  Every set operation
        (union, in-place union, membership probes) is performed on the
        same objects in the same order, so iteration orders -- and hence
        downstream floating-point sums -- match bitwise.
        """
        if not (self.alive(u) and self.alive(v)) or u == v:
            raise ValueError(f"cannot merge {u} and {v}")
        n = self._n
        self._epoch = epoch = self._epoch + 1
        k_stamp = self._k_stamp
        kk = self._kk

        # 1. Re-group stable adjacencies pointing into u or v; rebuild u's
        # in-edge transpose and stamp each source's combined count.
        src_union = self.in_sources[u] | self.in_sources.pop(v)
        new_in_src: List[int] = []
        new_in_k: List[float] = []
        for s_id in src_union:
            k = self._collapse_row(s_id, u, v)
            if k:
                new_in_src.append(s_id)
                new_in_k.append(k)
                k_stamp[s_id] = epoch
                kk[s_id] = k
        self.in_sources[u] = src_union
        self.in_src[u] = new_in_src
        self.in_k[u] = new_in_k
        self.in_src[v] = None
        self.in_k[v] = None
        # Only u's in-edge state was rebuilt (``_collapse_row`` edits other
        # clusters' *rows*, never their transposes), so u alone gets a new
        # source-side version; v is dead.
        self._src_version[u] += 1
        np_in = self._np_in
        if np_in:
            np_in[u] = np_in[v] = None

        # 2. Absorb v's members.
        assign = self.assign
        owner = self.owner
        if self._np_owner is not None:
            self._np_owner[list(self.members[v])] = u
        for s_id in self.members[v]:
            assign[s_id] = u
            owner[s_id] = u
        self.members[u] |= self.members.pop(v)
        count = self.count
        count[u] += count[v]
        self.cluster_depth[u] = max(
            self.cluster_depth[u], self.cluster_depth.pop(v)
        )
        self.cluster_label.pop(v)

        # 3. Rebuild u's out dimensions (additive except the self dim).
        slots_u = self.out_slots[u]
        slots_v = self.out_slots[v]
        old_edges_out = len(slots_u) + len(slots_v)
        stat_tgt = self.stat_tgt
        stat_sum = self.stat_sum
        stat_sq = self.stat_sq
        m_stamp = self._m_stamp
        m_sum = self._m_sum
        m_sq = self._m_sq
        m_order: List[int] = []
        for slots in (slots_u, slots_v):
            for slot in slots:
                t = stat_tgt[slot]
                if t == u or t == v:
                    continue
                if m_stamp[t] == epoch:
                    m_sum[t] = stat_sum[slot] + m_sum[t]
                    m_sq[t] = stat_sq[slot] + m_sq[t]
                else:
                    m_stamp[t] = epoch
                    m_sum[t] = stat_sum[slot]
                    m_sq[t] = stat_sq[slot]
                    m_order.append(t)
        sum_w = sq_w = 0.0
        has_self = False
        mem_u = self.members[u]
        s_cnt = self.s_count
        # Iterate the smaller of (sources, members) for the intersection.
        probe, other = (
            (src_union, mem_u)
            if len(src_union) <= len(mem_u)
            else (mem_u, src_union)
        )
        for s_id in probe:
            if s_id in other:
                # Stamped iff s_id has a (positive) count toward u.
                if k_stamp[s_id] == epoch:
                    k = kk[s_id]
                    sc = s_cnt[s_id]
                    t = sc * k
                    sum_w += t
                    sq_w += t * k
                    has_self = True

        # Free old slots, then allocate the rebuilt dimension list (old
        # values were already copied into scratch above).
        slot_of = self.slot_of
        free = self._free
        for slot in slots_u:
            del slot_of[stat_tgt[slot] * n + u]
            free.append(slot)
        for slot in slots_v:
            del slot_of[stat_tgt[slot] * n + v]
            free.append(slot)
        alloc = self._alloc_slot
        new_slots = [
            alloc(t * n + u, t, m_sum[t], m_sq[t]) for t in m_order
        ]
        if has_self:
            new_slots.append(alloc(u * n + u, u, sum_w, sq_w))
        self.out_slots[u] = new_slots
        self.out_slots[v] = None

        count_u = count[u]
        cluster_sq = self.cluster_sq
        old_sq_u = cluster_sq[u] + cluster_sq[v]
        cluster_sq[v] = 0.0
        new_sq_u = 0.0
        for t in m_order:
            s_ = m_sum[t]
            new_sq_u += m_sq[t] - (s_ * s_) / count_u
        if has_self:
            new_sq_u += sq_w - (sum_w * sum_w) / count_u
        cluster_sq[u] = new_sq_u
        self.total_sq += new_sq_u - old_sq_u
        self.num_edges += len(new_slots) - old_edges_out

        # 4. Parents outside {u}: collapse their ->u / ->v dims into ->u.
        p_stamp = self._p_stamp
        p_sum = self._p_sum
        p_sq = self._p_sq
        p_order: List[int] = []
        for s_id in src_union:
            p = owner[s_id]
            if p == u:
                continue
            if k_stamp[s_id] != epoch:
                continue  # no remaining count toward u
            k = kk[s_id]
            sc = s_cnt[s_id]
            t = sc * k
            if p_stamp[p] == epoch:
                p_sum[p] += t
                p_sq[p] += t * k
            else:
                p_stamp[p] = epoch
                p_sum[p] = t
                p_sq[p] = t * k
                p_order.append(p)
        version = self.version
        struct_version = self.struct_version
        base_u = u * n
        base_v = v * n
        for p in p_order:
            count_p = count[p]
            slots_p = self.out_slots[p]
            old_sq = 0.0
            old_dims = 0
            slot = slot_of.pop(base_u + p, None)
            if slot is not None:
                s_ = stat_sum[slot]
                old_sq += stat_sq[slot] - (s_ * s_) / count_p
                old_dims += 1
                slots_p.remove(slot)
                free.append(slot)
            slot = slot_of.pop(base_v + p, None)
            if slot is not None:
                s_ = stat_sum[slot]
                old_sq += stat_sq[slot] - (s_ * s_) / count_p
                old_dims += 1
                slots_p.remove(slot)
                free.append(slot)
            sp = p_sum[p]
            sqp = p_sq[p]
            # Combined dim appended at the end (dict path: new key).
            slots_p.append(alloc(base_u + p, u, sp, sqp))
            new_sq = sqp - (sp * sp) / count_p
            cluster_sq[p] += new_sq - old_sq
            self.total_sq += new_sq - old_sq
            self.num_edges += 1 - old_dims
            version[p] = version.get(p, 0) + 1
            struct_version[p] = struct_version.get(p, 0) + 1

        # 5. Invalidate heap entries touching u, its parents, its children.
        # Children get a full-version bump only: their own (child-side)
        # state is untouched, so their structural key -- which reads
        # struct_version -- stays cached.
        version[u] = version.get(u, 0) + 1
        struct_version[u] = struct_version.get(u, 0) + 1
        version.pop(v, None)
        struct_version.pop(v, None)
        for slot in new_slots:
            child = stat_tgt[slot]
            if child != u:
                version[child] = version.get(child, 0) + 1
        return u

    # ------------------------------------------------------------------
    # Export and diagnostics
    # ------------------------------------------------------------------

    def to_treesketch(self) -> TreeSketch:
        """Freeze the current partition into a TreeSketch synopsis."""
        sketch = TreeSketch()
        count = self.count
        for cid, label in self.cluster_label.items():
            sketch.add_node(cid, label, count[cid])
        stat_tgt = self.stat_tgt
        stat_sum = self.stat_sum
        stat_sq = self.stat_sq
        for cid in self.cluster_label:
            c_count = count[cid]
            for slot in self.out_slots[cid]:
                t = stat_tgt[slot]
                s = stat_sum[slot]
                sketch.add_edge(cid, t, s / c_count)
                sketch.stats[(cid, t)] = (s, stat_sq[slot])
        sketch.root_id = self.assign[self.stable.root_id]
        sketch.doc_height = self.stable.doc_height
        sketch.members = {cid: set(mem) for cid, mem in self.members.items()}
        return sketch

    def out_dims(self, cid: int) -> Dict[int, Tuple[float, float]]:
        """Cluster ``cid``'s dimensions as a dict, in slot (dict) order.

        Diagnostic accessor for tests and audits -- the dict-path
        equivalent of ``out_stats[cid]``.
        """
        return {
            self.stat_tgt[slot]: (self.stat_sum[slot], self.stat_sq[slot])
            for slot in self.out_slots[cid]
        }

    def gs_row(self, s: int) -> Dict[int, float]:
        """Stable class ``s``'s grouped adjacency as a dict (diagnostic)."""
        base = self._gs_indptr[s]
        return {
            self._gs_col[i]: self._gs_val[i]
            for i in range(base, base + self._gs_len[s])
        }

    def csr_arrays(self):
        """Numpy views over the gs CSR buffers (``None`` without numpy).

        Returns ``(indptr, lengths, col, val)``; the views share memory
        with the live buffers (zero copy).
        """
        np = get_numpy()
        if np is None:
            return None
        int_t = np.dtype("l")  # matches array('l') itemsize per platform
        return (
            np.frombuffer(self._gs_indptr, dtype=int_t),
            np.frombuffer(self._gs_len, dtype=int_t),
            np.frombuffer(self._gs_col, dtype=int_t)
            if len(self._gs_col)
            else np.empty(0, dtype=int_t),
            np.frombuffer(self._gs_val, dtype=np.float64)
            if len(self._gs_val)
            else np.empty(0, dtype=np.float64),
        )

    def check_invariants(self) -> None:
        """Expensive consistency audit used by the test suite."""
        n = self._n
        # Edge count bookkeeping.
        actual_edges = sum(
            len(self.out_slots[c]) for c in self.members
        )
        assert actual_edges == self.num_edges, (actual_edges, self.num_edges)
        # Cluster counts vs. members; owner array vs. assign dict.
        for cid, mem in self.members.items():
            assert self.count[cid] == sum(self.s_count[s] for s in mem)
            for s_id in mem:
                assert self.assign[s_id] == cid
                assert self.owner[s_id] == cid
        # CSR grouping matches stable adjacency under current assignment.
        for s_id in range(n):
            expected: Dict[int, float] = {}
            for dst, k in self.stable.out.get(s_id, {}).items():
                c = self.assign[dst]
                expected[c] = expected.get(c, 0.0) + float(k)
            assert self.gs_row(s_id) == expected, (s_id, expected)
        # Slot table: bijective with live dimensions, targets alive.
        seen_slots: Set[int] = set()
        for cid in self.members:
            for slot in self.out_slots[cid]:
                t = self.stat_tgt[slot]
                assert self.slot_of.get(t * n + cid) == slot
                assert t in self.members, (cid, t)
                assert slot not in seen_slots
                seen_slots.add(slot)
        assert len(self.slot_of) == len(seen_slots)
        assert not (seen_slots & set(self._free))
        # In-edge transpose consistent with in_sources and the CSR.
        for cid in self.members:
            srcs = self.in_src[cid]
            ks = self.in_k[cid]
            assert set(srcs) == self.in_sources[cid], cid
            assert len(srcs) == len(set(srcs))
            for s_id, k in zip(srcs, ks):
                assert self.gs_row(s_id).get(cid) == k, (s_id, cid)
        # Stats match a from-scratch recomputation.
        for cid, mem in self.members.items():
            fresh: Dict[int, List[float]] = {}
            for s_id in mem:
                sc = self.s_count[s_id]
                for t, k in self.gs_row(s_id).items():
                    acc = fresh.setdefault(t, [0.0, 0.0])
                    acc[0] += sc * k
                    acc[1] += sc * k * k
            stored = self.out_dims(cid)
            assert set(fresh) == set(stored), (cid, set(fresh), set(stored))
            for t, (a, b) in fresh.items():
                sa, sb = stored[t]
                assert abs(a - sa) < 1e-6 and abs(b - sb) < 1e-6
        # Version stamps cover exactly the live clusters.
        assert set(self.version) == set(self.members)
        assert set(self.struct_version) == set(self.members)
        # Numpy bulk audit of the CSR buffers (bounds / positivity).
        views = self.csr_arrays()
        if views is not None:
            _, lengths, col, val = views
            assert (lengths >= 0).all()
            if len(col):
                assert (col >= 0).all() and (col < n).all()
                assert (val > 0).all()
