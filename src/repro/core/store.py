"""The mmap-able binary synopsis store (``.tsb``) and its cache sidecar.

Every process in the serving tier used to rebuild its synopsis from JSON
on start: parse, ``float()`` every statistic, re-insert every node and
edge.  The ``.tsb`` format instead ships the flat buffers the rest of the
system already thinks in (``repro.core.kernel`` holds the build-time
partition as ``array('l')``/``array('d')``; this is the same idea applied
to the frozen synopsis): a fixed 64-byte header, a section table, and
page-aligned sections of raw little-endian ``int64``/``float64`` arrays
written ``array.tobytes()``-style.  Loading is ``mmap`` + zero-copy
``memoryview`` casts -- O(header) work plus one CRC pass at memory speed
-- and the Python-dict view of the synopsis (what ``eval_query`` and the
estimators traverse) is materialized lazily on first access, in exactly
the insertion orders the JSON loader produces, so a ``.tsb``-loaded
synopsis answers **bitwise-identically** to a JSON-loaded one
(tests/test_store_roundtrip.py holds it to that, with and without numpy).

Because the bytes are mmap'ed read-only, N worker processes serving the
same synopsis file share one physical copy of the buffers through the
page cache -- a supervisor-forked fleet (``treesketch serve --workers
N``) pays the heap cost of the dict view only per worker *that actually
gets queries for the sketch*, and pays file-load cost essentially never.

Alongside every ``.tsb`` there may be a ``.tsb.cache`` **sidecar**: plain
JSON carrying warm-restart state -- the per-sketch ``QueryCache``
selectivity entries the serving daemon persists on graceful shutdown,
and/or the TSBUILD merge-score memo for resumable builds.  The sidecar
is keyed by the synopsis checksum (plus a build-options signature for
the memo), so a stale sidecar is *ignored*, never served: a mismatched
key means the synopsis changed and every cached answer is suspect.

File layout (all integers little-endian; docs/STORAGE.md for the spec)::

    [ 64-byte header  ] magic, version, kind, byte order, root/height,
                        node+edge counts, section count, payload CRC32,
                        header CRC32
    [ section table   ] 48 bytes per section: name, typecode, offset,
                        byte length, element count
    [ ...page pad...  ]
    [ section 0       ] page-aligned raw array bytes
    [ ...page pad...  ]
    [ section 1       ] ...

Corruption of any kind -- bad magic, unknown version, header or payload
CRC mismatch, a section table pointing past end-of-file (truncation) --
raises :class:`SynopsisFormatError`, never a struct error or silent
garbage; tests/test_store_corrupt.py enumerates the cases.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import zlib
from array import array
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch

__all__ = [
    "SynopsisFormatError",
    "TSB_MAGIC",
    "TSB_VERSION",
    "write_tsb",
    "read_tsb",
    "read_tsb_info",
    "MappedStableSummary",
    "MappedTreeSketch",
    "file_checksum",
    "sidecar_path",
    "save_cache_sidecar",
    "load_cache_sidecar",
]


class SynopsisFormatError(ValueError):
    """A synopsis store file is corrupt, truncated, or unsupported."""


TSB_MAGIC = b"TSBSYN1\x00"
TSB_VERSION = 1
PAGE_SIZE = 4096

_KIND_STABLE = 1
_KIND_TREESKETCH = 2
_KIND_NAMES = {_KIND_STABLE: "stable", _KIND_TREESKETCH: "treesketch"}

# magic, version, kind, byteorder (1 = little), root_id, doc_height,
# num_nodes, num_edges, section_count, payload_crc32, header_crc32, pad.
_HEADER = struct.Struct("<8sIBB2xqqqqIII4x")
assert _HEADER.size == 64
_SECTION = struct.Struct("<16sc7xqqq")
assert _SECTION.size == 48

#: Section name -> array typecode.  'B' sections are raw byte blobs.
_SECTIONS = {
    "node_ids": "q",     # node ids, ascending (the JSON loader's order)
    "labels": "q",       # per node: index into the string table
    "counts": "q",       # per node: extent size
    "edge_off": "q",     # CSR row offsets over the node order (N + 1)
    "edge_dst": "q",     # per edge: target as node-order index
    "edge_w": "d",       # per edge: weight (avg child count / stable k)
    "str_off": "q",      # string table offsets into str_blob (L + 1)
    "str_blob": "B",     # UTF-8 string bytes, concatenated
    "depths": "q",       # stable only: per node class depth
    "stat_sum": "d",     # sketch only: per edge sum of child counts
    "stat_sq": "d",      # sketch only: per edge sum of squared counts
    "mem_off": "q",      # sketch, optional: members row offsets (N + 1)
    "mem_val": "q",      # sketch, optional: member class ids, sorted per row
    "val_node": "q",     # sketch, optional: node-order index per annotation
    "val_meta": "q",     # 4 ints per annotation: top_len, rest_count,
                         #   rest_distinct, null_count
    "val_key": "q",      # flattened top keys as string-table indexes
    "val_cnt": "q",      # flattened top counts
}

_MAX_SECTIONS = 64


def _align(offset: int) -> int:
    return (offset + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


class _StringTable:
    """Deduplicating string pool; emits offsets + UTF-8 blob sections."""

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._strings: List[str] = []

    def add(self, value: str) -> int:
        idx = self._index.get(value)
        if idx is None:
            idx = len(self._strings)
            self._index[value] = idx
            self._strings.append(value)
        return idx

    def sections(self) -> Tuple[List[int], bytes]:
        offsets = [0]
        chunks = []
        for value in self._strings:
            data = value.encode("utf-8")
            chunks.append(data)
            offsets.append(offsets[-1] + len(data))
        return offsets, b"".join(chunks)


# ----------------------------------------------------------------- writing


def write_tsb(synopsis: Union[StableSummary, TreeSketch], path: str) -> int:
    """Write ``synopsis`` to ``path`` in the binary ``.tsb`` format.

    Returns the payload CRC32 (the checksum cache sidecars key on).  The
    file is written to a temporary sibling and atomically renamed, so a
    crashed writer never leaves a half-written store behind.
    """
    if isinstance(synopsis, StableSummary):
        kind = _KIND_STABLE
    elif isinstance(synopsis, TreeSketch):
        kind = _KIND_TREESKETCH
    else:
        raise TypeError(
            f"unsupported synopsis type {type(synopsis).__name__}")

    nids = sorted(synopsis.label)
    index_of = {nid: i for i, nid in enumerate(nids)}
    strings = _StringTable()

    sections: List[Tuple[str, str, bytes, int]] = []

    def emit(name: str, values) -> None:
        typecode = _SECTIONS[name]
        if typecode == "B":
            data = bytes(values)
            sections.append((name, "B", data, len(data)))
        else:
            arr = array(typecode, values)
            sections.append((name, typecode, arr.tobytes(), len(arr)))

    emit("node_ids", nids)
    emit("labels", [strings.add(synopsis.label[nid]) for nid in nids])
    emit("counts", [synopsis.count[nid] for nid in nids])

    edge_off = [0]
    edge_dst: List[int] = []
    edge_w: List[float] = []
    edges: List[Tuple[int, int]] = []
    for nid in nids:
        for dst in sorted(synopsis.out.get(nid, {})):
            edges.append((nid, dst))
            edge_dst.append(index_of[dst])
            edge_w.append(float(synopsis.out[nid][dst]))
        edge_off.append(len(edge_dst))
    emit("edge_off", edge_off)
    emit("edge_dst", edge_dst)
    emit("edge_w", edge_w)

    if kind == _KIND_STABLE:
        if set(synopsis.depth) != set(nids):
            raise SynopsisFormatError(
                "stable summary depth table does not cover its node set; "
                "cannot store it losslessly")
        emit("depths", [synopsis.depth[nid] for nid in nids])
    else:
        stats = synopsis.stats
        if len(stats) != len(edges) or any(e not in stats for e in edges):
            raise SynopsisFormatError(
                "sketch has edges without sufficient statistics; "
                "cannot store it losslessly")
        emit("stat_sum", [stats[e][0] for e in edges])
        emit("stat_sq", [stats[e][1] for e in edges])
        if synopsis.members:
            mem_off = [0]
            mem_val: List[int] = []
            for nid in nids:
                mem_val.extend(sorted(synopsis.members.get(nid, ())))
                mem_off.append(len(mem_val))
            emit("mem_off", mem_off)
            emit("mem_val", mem_val)
        if synopsis.values:
            val_node: List[int] = []
            val_meta: List[int] = []
            val_key: List[int] = []
            val_cnt: List[int] = []
            for nid in sorted(synopsis.values):
                summary = synopsis.values[nid]
                top = sorted(summary.top.items())
                val_node.append(index_of[nid])
                val_meta.extend([len(top), summary.rest_count,
                                 summary.rest_distinct, summary.null_count])
                for key, count in top:
                    val_key.append(strings.add(key))
                    val_cnt.append(count)
            emit("val_node", val_node)
            emit("val_meta", val_meta)
            emit("val_key", val_key)
            emit("val_cnt", val_cnt)

    str_off, str_blob = strings.sections()
    emit("str_off", str_off)
    emit("str_blob", str_blob)

    # Lay the sections out page-aligned after the header + section table.
    table_end = _HEADER.size + _SECTION.size * len(sections)
    offset = _align(table_end)
    entries: List[Tuple[str, str, int, int, int]] = []
    for name, typecode, data, count in sections:
        entries.append((name, typecode, offset, len(data), count))
        offset = _align(offset + len(data))

    buf = bytearray(offset)
    pos = _HEADER.size
    for (name, typecode, sec_off, nbytes, count), (_, _, data, _) in zip(
            entries, sections):
        _SECTION.pack_into(buf, pos, name.encode("ascii").ljust(16, b"\x00"),
                           typecode.encode("ascii"), sec_off, nbytes, count)
        pos += _SECTION.size
        buf[sec_off:sec_off + nbytes] = data

    payload_crc = zlib.crc32(memoryview(buf)[_HEADER.size:]) & 0xFFFFFFFF
    byteorder = 1 if sys.byteorder == "little" else 0
    header = _HEADER.pack(
        TSB_MAGIC, TSB_VERSION, kind, byteorder,
        synopsis.root_id, synopsis.doc_height, len(nids), len(edges),
        len(sections), payload_crc, 0)
    header_crc = zlib.crc32(header) & 0xFFFFFFFF
    buf[:_HEADER.size] = _HEADER.pack(
        TSB_MAGIC, TSB_VERSION, kind, byteorder,
        synopsis.root_id, synopsis.doc_height, len(nids), len(edges),
        len(sections), payload_crc, header_crc)

    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(buf)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return payload_crc


# ----------------------------------------------------------------- reading


class _TsbFile:
    """One mmap'ed ``.tsb`` file: verified header + section directory.

    All validation happens here, up front: magic, version, byte order,
    both CRCs, and every section extent against the real file size (the
    truncation check).  Past the constructor, ``view()`` hands out
    zero-copy typed ``memoryview``s into the mapping.
    """

    def __init__(self, path: str) -> None:
        import mmap

        self.path = path
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < _HEADER.size:
                raise SynopsisFormatError(
                    f"{path}: too small for a .tsb header "
                    f"({size} < {_HEADER.size} bytes)")
            self._mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self._mv = memoryview(self._mm)
        try:
            self._parse(size)
        except SynopsisFormatError:
            self.close()
            raise

    def _parse(self, size: int) -> None:
        (magic, version, kind, byteorder, root_id, doc_height, num_nodes,
         num_edges, section_count, payload_crc, header_crc) = _HEADER.unpack(
            self._mv[:_HEADER.size])
        if magic != TSB_MAGIC:
            raise SynopsisFormatError(
                f"{self.path}: bad magic {bytes(magic)!r} "
                f"(expected {TSB_MAGIC!r}; not a .tsb synopsis store)")
        if version != TSB_VERSION:
            raise SynopsisFormatError(
                f"{self.path}: unsupported .tsb format version {version} "
                f"(this build reads version {TSB_VERSION})")
        expected_order = 1 if sys.byteorder == "little" else 0
        if byteorder != expected_order:
            raise SynopsisFormatError(
                f"{self.path}: byte order mismatch (file was written on a "
                f"{'little' if byteorder == 1 else 'big'}-endian host)")
        if kind not in _KIND_NAMES:
            raise SynopsisFormatError(
                f"{self.path}: unknown synopsis kind {kind}")
        zeroed = bytearray(self._mv[:_HEADER.size])
        _HEADER.pack_into(zeroed, 0, magic, version, kind, byteorder,
                          root_id, doc_height, num_nodes, num_edges,
                          section_count, payload_crc, 0)
        if zlib.crc32(bytes(zeroed)) & 0xFFFFFFFF != header_crc:
            raise SynopsisFormatError(
                f"{self.path}: header checksum mismatch (corrupt header)")
        if not 0 < section_count <= _MAX_SECTIONS:
            raise SynopsisFormatError(
                f"{self.path}: implausible section count {section_count}")
        table_end = _HEADER.size + _SECTION.size * section_count
        if size < table_end:
            raise SynopsisFormatError(
                f"{self.path}: truncated inside the section table "
                f"({size} < {table_end} bytes)")
        self.kind = kind
        self.root_id = root_id
        self.doc_height = doc_height
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.checksum = payload_crc
        self.sections: Dict[str, Tuple[str, int, int, int]] = {}
        pos = _HEADER.size
        for _ in range(section_count):
            raw_name, raw_tc, offset, nbytes, count = _SECTION.unpack(
                self._mv[pos:pos + _SECTION.size])
            pos += _SECTION.size
            name = raw_name.rstrip(b"\x00").decode("ascii", "replace")
            typecode = raw_tc.decode("ascii", "replace")
            expected_tc = _SECTIONS.get(name)
            if expected_tc is None or typecode != expected_tc:
                raise SynopsisFormatError(
                    f"{self.path}: unknown section {name!r} "
                    f"(typecode {typecode!r})")
            itemsize = 1 if typecode == "B" else array(typecode).itemsize
            if nbytes != count * itemsize or offset < table_end:
                raise SynopsisFormatError(
                    f"{self.path}: inconsistent section table entry for "
                    f"{name!r} (offset {offset}, {nbytes} bytes, "
                    f"{count} elements)")
            if offset + nbytes > size:
                raise SynopsisFormatError(
                    f"{self.path}: section {name!r} extends past end of "
                    f"file ({offset + nbytes} > {size} bytes; truncated?)")
            self.sections[name] = (typecode, offset, nbytes, count)
        if zlib.crc32(self._mv[_HEADER.size:]) & 0xFFFFFFFF != payload_crc:
            raise SynopsisFormatError(
                f"{self.path}: payload checksum mismatch (corrupt store)")

    def has(self, name: str) -> bool:
        return name in self.sections

    def view(self, name: str) -> memoryview:
        """Zero-copy typed view of one section's array."""
        typecode, offset, nbytes, _count = self.sections[name]
        view = self._mv[offset:offset + nbytes]
        return view if typecode == "B" else view.cast(typecode)

    def strings(self) -> List[str]:
        offsets = self.view("str_off")
        blob = self.view("str_blob")
        return [
            str(blob[offsets[i]:offsets[i + 1]], "utf-8")
            for i in range(len(offsets) - 1)
        ]

    def info(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "format": "tsb",
            "version": TSB_VERSION,
            "kind": _KIND_NAMES[self.kind],
            "root_id": self.root_id,
            "doc_height": self.doc_height,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "checksum": self.checksum,
            "file_bytes": len(self._mv),
            "sections": [
                {"name": name, "typecode": tc, "offset": off,
                 "bytes": nbytes, "count": count}
                for name, (tc, off, nbytes, count) in self.sections.items()
            ],
        }

    def close(self) -> None:
        self._mv.release()
        self._mm.close()


class _MappedSynopsisMixin:
    """Lazy materialization shared by the two mapped synopsis classes.

    The constructor records only O(1) header state; the dict tables the
    evaluation code traverses are built on first attribute access, in
    the same insertion orders the JSON loader produces -- which is what
    makes a mapped synopsis answer bitwise-identically to a JSON-loaded
    one.  Until then the only resident state is the mmap itself, shared
    across processes through the page cache.
    """

    _LAZY: Tuple[str, ...] = ()

    def _init_mapped(self, tsb: _TsbFile) -> None:
        # Deliberately does NOT call GraphSynopsis.__init__: assigning
        # the table attributes eagerly is exactly what laziness avoids.
        self._tsb: Optional[_TsbFile] = tsb
        self.root_id = tsb.root_id
        self.doc_height = tsb.doc_height
        self._topo = None
        self._topo_computed = False
        #: Provenance used by cache sidecars (and ``treesketch inspect``).
        self.tsb_path = tsb.path
        self.tsb_checksum = tsb.checksum

    def __getattr__(self, name: str):
        if name in type(self)._LAZY and self.__dict__.get("_tsb") is not None:
            self.materialize()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    @property
    def materialized(self) -> bool:
        return self._tsb is None

    # `num_nodes`/`num_edges` come from the header so that registries and
    # `inspect` can describe a mapped sketch without materializing it.
    @property
    def num_nodes(self) -> int:
        tsb = self.__dict__.get("_tsb")
        return tsb.num_nodes if tsb is not None else len(self.label)

    @property
    def num_edges(self) -> int:
        tsb = self.__dict__.get("_tsb")
        if tsb is not None:
            return tsb.num_edges
        return sum(len(targets) for targets in self.out.values())

    def materialize(self) -> None:
        """Build the dict view of the synopsis from the mapped sections."""
        tsb = self._tsb
        if tsb is None:
            return
        # The typed views live only inside _materialize_impl, so by the
        # time close() runs no exported buffer pins the mapping.
        self._materialize_impl(tsb)
        self._tsb = None
        tsb.close()

    def _materialize_impl(self, tsb: _TsbFile) -> None:
        node_ids = tsb.view("node_ids")
        strings = tsb.strings()
        label_idx = tsb.view("labels")
        counts = tsb.view("counts")
        edge_off = tsb.view("edge_off")
        edge_dst = tsb.view("edge_dst")
        edge_w = tsb.view("edge_w")
        # Insertion orders mirror synopsis_from_dict: nodes ascending,
        # then edges in (src, dst) order.
        self.label = {nid: strings[label_idx[i]]
                      for i, nid in enumerate(node_ids)}
        self.count = {nid: counts[i] for i, nid in enumerate(node_ids)}
        out: Dict[int, Dict[int, float]] = {nid: {} for nid in node_ids}
        for i, nid in enumerate(node_ids):
            row = out[nid]
            for e in range(edge_off[i], edge_off[i + 1]):
                row[node_ids[edge_dst[e]]] = edge_w[e]
        self.out = out
        self._materialize_tables(tsb, node_ids, strings)

    def _materialize_tables(self, tsb: _TsbFile, node_ids: memoryview,
                            strings: List[str]) -> None:
        raise NotImplementedError

    def __reduce__(self):
        # Pickle/deepcopy as the equivalent plain synopsis: an mmap does
        # not survive either, and forked serving workers re-open the file
        # themselves (sharing pages through the page cache).
        from repro.core.io import synopsis_from_dict, synopsis_to_dict

        return (synopsis_from_dict, (synopsis_to_dict(self),))


class MappedStableSummary(_MappedSynopsisMixin, StableSummary):
    """A :class:`StableSummary` backed by a mapped ``.tsb`` file."""

    _LAZY = ("label", "count", "out", "depth")

    def __init__(self, tsb: _TsbFile) -> None:
        self._init_mapped(tsb)
        self.extent = None  # .tsb (like JSON) does not persist extents

    def _materialize_tables(self, tsb: _TsbFile, node_ids: memoryview,
                            strings: List[str]) -> None:
        depths = tsb.view("depths")
        self.depth = {nid: depths[i] for i, nid in enumerate(node_ids)}


class MappedTreeSketch(_MappedSynopsisMixin, TreeSketch):
    """A :class:`TreeSketch` backed by a mapped ``.tsb`` file."""

    _LAZY = ("label", "count", "out", "stats", "members", "values")

    def __init__(self, tsb: _TsbFile) -> None:
        self._init_mapped(tsb)

    def _materialize_tables(self, tsb: _TsbFile, node_ids: memoryview,
                            strings: List[str]) -> None:
        edge_off = tsb.view("edge_off")
        edge_dst = tsb.view("edge_dst")
        stat_sum = tsb.view("stat_sum")
        stat_sq = tsb.view("stat_sq")
        stats: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for i, nid in enumerate(node_ids):
            for e in range(edge_off[i], edge_off[i + 1]):
                stats[(nid, node_ids[edge_dst[e]])] = (stat_sum[e], stat_sq[e])
        self.stats = stats
        members: Dict[int, set] = {}
        if tsb.has("mem_off"):
            mem_off = tsb.view("mem_off")
            mem_val = tsb.view("mem_val")
            for i, nid in enumerate(node_ids):
                if mem_off[i] != mem_off[i + 1]:
                    members[nid] = set(mem_val[mem_off[i]:mem_off[i + 1]])
        self.members = members
        values: Dict[int, object] = {}
        if tsb.has("val_node"):
            from repro.values.summary import ValueSummary

            val_node = tsb.view("val_node")
            val_meta = tsb.view("val_meta")
            val_key = tsb.view("val_key")
            val_cnt = tsb.view("val_cnt")
            pos = 0
            for k, idx in enumerate(val_node):
                top_len, rest_count, rest_distinct, null_count = (
                    val_meta[4 * k:4 * k + 4])
                values[node_ids[idx]] = ValueSummary(
                    top={strings[val_key[pos + j]]: val_cnt[pos + j]
                         for j in range(top_len)},
                    rest_count=rest_count,
                    rest_distinct=rest_distinct,
                    null_count=null_count,
                )
                pos += top_len
        self.values = values


def read_tsb(path: str) -> Union[MappedStableSummary, MappedTreeSketch]:
    """Open a ``.tsb`` store: header-verified, lazily materialized."""
    tsb = _TsbFile(path)
    if tsb.kind == _KIND_STABLE:
        return MappedStableSummary(tsb)
    return MappedTreeSketch(tsb)


def read_tsb_info(path: str) -> Dict[str, Any]:
    """Header + section table of a ``.tsb`` file (``treesketch inspect``)."""
    tsb = _TsbFile(path)
    try:
        return tsb.info()
    finally:
        tsb.close()


# ------------------------------------------------------------- checksums


def file_checksum(path: str) -> int:
    """The sidecar key for any synopsis file.

    ``.tsb`` stores carry their payload CRC32 in the header (read in
    O(1)); for every other format this is the CRC32 of the raw file
    bytes.  Either way, a changed synopsis changes the checksum, which
    is what makes stale sidecars detectable.
    """
    with open(path, "rb") as handle:
        head = handle.read(_HEADER.size)
        if head[:len(TSB_MAGIC)] == TSB_MAGIC and len(head) == _HEADER.size:
            return _HEADER.unpack(head)[9]
        crc = zlib.crc32(head)
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc & 0xFFFFFFFF
            crc = zlib.crc32(chunk, crc)


# ---------------------------------------------------------- cache sidecar

_SIDECAR_VERSION = 1


def sidecar_path(path: str) -> str:
    """The cache sidecar of synopsis file ``path`` (``X.tsb.cache``)."""
    return f"{path}.cache"


def save_cache_sidecar(path: str, checksum: int,
                       selectivities: Optional[Dict[str, float]] = None,
                       memo: Optional[Dict[str, Any]] = None) -> str:
    """Write (or update) the cache sidecar of synopsis file ``path``.

    ``selectivities`` maps canonical query text to the estimated
    selectivity (what :meth:`repro.core.qcache.QueryCache.
    export_selectivities` returns); ``memo`` carries a TSBUILD merge-
    score memo (``{"options": signature, "entries": [...]}``).  A payload
    that is not being replaced is preserved from the existing sidecar iff
    that sidecar's checksum still matches; floats survive exactly (JSON
    round-trips Python floats bit-for-bit).  Returns the sidecar path.
    """
    target = sidecar_path(path)
    existing = load_cache_sidecar(path, checksum, _count_stale=False)
    doc: Dict[str, Any] = {
        "format": _SIDECAR_VERSION,
        "checksum": int(checksum),
    }
    if existing:
        for key in ("selectivities", "memo"):
            if existing.get(key) is not None:
                doc[key] = existing[key]
    if selectivities is not None:
        doc["selectivities"] = dict(selectivities)
    if memo is not None:
        doc["memo"] = memo
    tmp = f"{target}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, separators=(",", ":"))
    os.replace(tmp, target)
    return target


def load_cache_sidecar(path: str, checksum: int,
                       _count_stale: bool = True) -> Optional[Dict[str, Any]]:
    """Read the sidecar of ``path`` iff it matches ``checksum``.

    Returns the sidecar document, or ``None`` when it is absent, corrupt,
    or keyed to a different synopsis checksum -- a stale sidecar is
    *ignored, never wrong* (counted as ``store.cache.ignored_stale``).
    """
    target = sidecar_path(path)
    try:
        with open(target, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        doc = None
    if (not isinstance(doc, dict)
            or doc.get("format") != _SIDECAR_VERSION
            or doc.get("checksum") != int(checksum)):
        if _count_stale:
            from repro.obs import get_metrics

            get_metrics().counter("store.cache.ignored_stale").inc()
        return None
    return doc
