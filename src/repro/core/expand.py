"""Expanding a result sketch into an approximate nesting tree.

A result sketch stores, per edge ``(u_Q, v_Q)``, the *average* number of
``v_Q`` children each occurrence of ``u_Q`` has.  Expansion materializes
occurrences; fractional averages are apportioned deterministically with a
Bresenham-style cumulative-rounding scheme, so that after ``n`` occurrences
of ``u_Q`` the total number of emitted ``v_Q`` children is ``round(n * k)``
-- the expansion preserves aggregate counts as faithfully as integer
occurrences allow, without randomness.

The true nesting tree only contains elements that appear in *complete*
bindings, whereas EVALQUERY's result sketch may retain bindings whose solid
(non-optional) sub-constraints fail (Fig. 7 only tests global emptiness).
Expansion therefore weights every binding by its *satisfaction fraction* --
the estimated fraction of its elements whose solid child constraints are
all met, computed bottom-up with the same "counts below one are fractions
of elements" reading EVALEMBED applies to branch predicates.  On a
count-stable synopsis the fractions are exactly 0 or 1 and the expansion
reproduces the exact nesting tree, realizing the paper's exactness claim
for stable synopses (Section 4.3).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Tuple

from repro.core.evaluate import ResultSketch, RSKey
from repro.engine.nesting import NestingTree, NTNode


class ExpansionLimitError(RuntimeError):
    """Raised when an expansion would exceed the node safety limit."""


def satisfaction_fractions(result: ResultSketch) -> Dict[RSKey, float]:
    """Estimated fraction of each binding's elements in complete bindings.

    ``sat(u_Q) = prod over solid child variables q_c of
    min(1, sum_v count(u_Q, v_Q) * sat(v_Q))`` -- child variables are
    processed before their parents (reverse query pre-order).
    """
    qnode_of = {n.var: n for n in result.query.nodes}
    sat: Dict[RSKey, float] = {}
    for qnode in reversed(result.query.nodes):
        for key in result.bind.get(qnode.var, []):
            total = 1.0
            edges = result.out.get(key, {})
            for qc in qnode.children:
                if qc.optional:
                    continue
                supply = sum(
                    avg * sat.get(v_key, 0.0)
                    for v_key, avg in edges.items()
                    if v_key[1] == qc.var
                )
                total *= min(1.0, supply)
                if total == 0.0:
                    break
            sat[key] = total
    return sat


def _variance_specs(
    result: ResultSketch, sketch
) -> Dict[Tuple[RSKey, RSKey], Tuple[int, int, float]]:
    """Two-point distributions for result edges backed by one synopsis edge.

    A result edge ``(u, q) -> (v, q_c)`` whose query path is a single
    child-axis step maps 1:1 to the synopsis edge ``u -> v``; its stored
    sufficient statistics give the per-element mean ``m`` and standard
    deviation ``s`` of the child counts.  The two-point support
    ``{round(m - s), round(m + s)}`` with ``P(high) = (m - l)/(h - l)``
    matches the mean exactly and the variance approximately -- and
    reproduces bimodal clusters (counts {1,1,4,4} expand back to 1s and
    4s instead of a uniform 2.5).  Falls back to plain mean expansion
    when the result count was scaled by predicates or satisfaction.
    """
    from repro.query.path import Axis  # local to avoid import cycles

    qnode_of = {n.var: n for n in result.query.nodes}
    specs: Dict[Tuple[RSKey, RSKey], Tuple[int, int, float]] = {}
    for parent_key, edges in result.out.items():
        for child_key, avg in edges.items():
            qnode = qnode_of[child_key[1]]
            path = qnode.path
            if path is None or len(path.steps) != 1:
                continue
            step = path.steps[0]
            if step.axis is not Axis.CHILD or step.predicates:
                continue
            u, v = parent_key[0], child_key[0]
            stats = getattr(sketch, "stats", {}).get((u, v))
            if stats is None:
                continue
            count = sketch.count.get(u)
            if not count:
                continue
            mean = stats[0] / count
            if abs(avg - mean) > 1e-9 * max(1.0, mean):
                continue  # predicate-scaled edge: keep mean expansion
            variance = max(0.0, stats[1] / count - mean * mean)
            sd = math.sqrt(variance)
            low = max(0, int(math.floor(mean - sd + 0.5)))
            high = max(low, int(math.floor(mean + sd + 0.5)))
            if high == low:
                if low == mean:
                    specs[(parent_key, child_key)] = (low, low, 0.0)
                continue  # integer support cannot carry this mean; fall back
            p_high = (mean - low) / (high - low)
            if not (0.0 <= p_high <= 1.0):
                continue
            specs[(parent_key, child_key)] = (low, high, p_high)
    return specs


def expand_result(
    result: ResultSketch,
    max_nodes: int = 2_000_000,
    sketch=None,
    seed: Optional[int] = None,
) -> NestingTree:
    """Materialize the approximate nesting tree of a result sketch.

    ``max_nodes`` guards against pathological expansions (deep chains of
    large fractional counts multiply); exceeding it raises
    :class:`ExpansionLimitError` rather than exhausting memory.

    When the originating ``sketch`` is supplied, edges that map 1:1 to a
    synopsis edge are expanded *variance-aware*: the synopsis' sufficient
    statistics pick a deterministic two-point count distribution instead
    of a flat average (see :func:`_variance_specs`); everything else uses
    phase-staggered Bresenham apportioning of the average.

    With ``seed`` set, per-occurrence counts are *sampled* (stochastic
    rounding / two-point draws with the same means) instead of
    apportioned deterministically -- useful for variance studies and for
    a like-for-like comparison with the twig-XSketch sampled answers.
    """
    sat = satisfaction_fractions(result)
    specs = _variance_specs(result, sketch) if sketch is not None else {}
    rng = random.Random(seed) if seed is not None else None
    # Cumulative occurrence counters per sketch edge for the Bresenham
    # apportioning: occurrence i of the source receives
    # floor((i+1)*k + phase) - floor(i*k + phase) children along the edge.
    # Each edge gets its own deterministic phase (golden-ratio sequence):
    # without staggering, all fractional edges of a node round up at the
    # same occurrence indices, concentrating children in a few occurrences
    # and fabricating skew the document does not have.
    emitted: Dict[Tuple[RSKey, RSKey], int] = {}
    phases: Dict[Tuple[RSKey, RSKey], float] = {}
    budget = [max_nodes]

    def phase_of(key: Tuple[RSKey, RSKey]) -> float:
        phase = phases.get(key)
        if phase is None:
            phase = (0.6180339887498949 * (len(phases) + 1)) % 1.0
            phases[key] = phase
        return phase

    def take(parent: RSKey, child: RSKey, avg: float) -> int:
        key = (parent, child)
        phase = phase_of(key)
        i = emitted.get(key, 0)
        emitted[key] = i + 1
        spec = specs.get(key)
        if spec is not None and sat.get(child, 0.0) >= 1.0:
            low, high, p_high = spec
            if rng is not None:
                return high if rng.random() < p_high else low
            hits_now = math.floor((i + 1) * p_high + phase)
            hits_before = math.floor(i * p_high + phase)
            return high if hits_now > hits_before else low
        if rng is not None:
            base = math.floor(avg)
            frac = avg - base
            return int(base + (1 if rng.random() < frac else 0))
        return int(math.floor((i + 1) * avg + phase) - math.floor(i * avg + phase))

    def build(key: RSKey) -> NTNode:
        budget[0] -= 1
        if budget[0] < 0:
            raise ExpansionLimitError(
                f"expansion exceeds max_nodes={max_nodes}; "
                "the approximate answer is too large to materialize"
            )
        node = NTNode(label=result.label[key], qvar=key[1])
        for child_key, avg in result.out.get(key, {}).items():
            effective = avg * sat.get(child_key, 0.0)
            for _ in range(take(key, child_key, effective)):
                node.add(build(child_key))
        return node

    root = build(result.root_key)
    return NestingTree(root, result.query)


def expected_size(result: ResultSketch) -> float:
    """Expected node count of the expansion (without materializing it).

    Computed by propagating expected occurrence counts through the sketch
    in query pre-order; useful to check against ``max_nodes`` beforehand.
    """
    occurrences: Dict[RSKey, float] = {result.root_key: 1.0}
    total = 0.0
    for qnode in result.query.nodes:
        for key in result.bind.get(qnode.var, []):
            occ = occurrences.get(key, 0.0)
            total += occ
            for child_key, avg in result.out.get(key, {}).items():
                occurrences[child_key] = occurrences.get(child_key, 0.0) + occ * avg
    return total
