"""Storage-size model for graph synopses.

The paper reports synopsis sizes in kilobytes.  We charge each synopsis node
``NODE_BYTES`` (a label identifier plus an element count) and each synopsis
edge ``EDGE_BYTES`` (a target identifier plus a float32 average child
count), which puts the count-stable summaries and the 10-50KB budgets of the
experiments on the same scale as the paper's Table 1.
"""

from __future__ import annotations

NODE_BYTES = 8
EDGE_BYTES = 8


def synopsis_bytes(num_nodes: int, num_edges: int) -> int:
    """Total size in bytes of a synopsis with the given node/edge counts."""
    return NODE_BYTES * num_nodes + EDGE_BYTES * num_edges


def kb(num_bytes: float) -> float:
    """Bytes -> kilobytes (for reporting)."""
    return num_bytes / 1024.0
