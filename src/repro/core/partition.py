"""Working state of TSBUILD: a partition of stable-summary nodes.

TSBUILD (Fig. 5) starts from the count-stable summary and repeatedly merges
synopsis nodes.  :class:`MergePartition` maintains the partition of stable
classes into clusters together with everything needed to score and apply
merges *without touching base data* (the paper's sufficient-statistics
scheme, Section 4.2):

* ``gs[s]``: for every stable class ``s``, its out-adjacency grouped by the
  *current* clusters (``cluster id -> total child count``).  This is the
  "small subset of the stable summary" that must be consulted when merges
  of children create cross-terms that plain per-edge statistics cannot
  capture.
* ``out_stats[c][t] = (sum, sum_sq)``: per cluster-edge sufficient
  statistics of the per-element child counts, from which both the average
  edge counts and the squared-error metric follow in closed form.
* ``in_sources[c]``: the stable classes with at least one edge into
  cluster ``c`` (the reverse index that makes parent-side updates local).

Merging clusters ``u`` and ``v`` into ``w``:

* dimensions toward targets outside ``{u, v}`` are *additive* (every
  element belongs to exactly one of the extents, so sums and sums of
  squares just add);
* the dimension toward ``w`` itself (when ``u``/``v`` had edges among
  themselves) needs per-stable-class recomputation via ``gs`` because an
  element's counts toward ``u`` and ``v`` combine: ``(k_u + k_v)^2`` has a
  cross-term;
* parent clusters see their two dimensions ``->u``, ``->v`` collapse into
  one ``->w`` dimension, likewise recomputed via ``gs``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.size import EDGE_BYTES, NODE_BYTES
from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch


class MergeResult:
    """Score of a candidate merge: errd (squared-error increase) and sized
    (synopsis-size decrease in bytes).  ``ratio`` is the marginal-gain key
    of the TSBUILD heap."""

    __slots__ = ("errd", "sized")

    def __init__(self, errd: float, sized: int) -> None:
        self.errd = errd
        self.sized = sized

    @property
    def ratio(self) -> float:
        return self.errd / self.sized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeResult(errd={self.errd:.3f}, sized={self.sized})"


class MergePartition:
    """Mutable clustering of the stable summary's classes."""

    def __init__(self, stable: StableSummary) -> None:
        self.stable = stable
        self.s_count: Dict[int, int] = dict(stable.count)
        self.s_label: Dict[int, str] = dict(stable.label)
        self.s_depth: Dict[int, int] = dict(stable.depth)

        # Cluster state; initially one cluster per stable class (same ids).
        self.members: Dict[int, Set[int]] = {
            nid: {nid} for nid in stable.node_ids()
        }
        self.count: Dict[int, int] = dict(stable.count)
        self.cluster_label: Dict[int, str] = dict(stable.label)
        self.cluster_depth: Dict[int, int] = dict(stable.depth)
        self.assign: Dict[int, int] = {nid: nid for nid in stable.node_ids()}

        # Grouped stable out-adjacency and its reverse index.
        self.gs: Dict[int, Dict[int, float]] = {
            nid: {dst: float(k) for dst, k in stable.out.get(nid, {}).items()}
            for nid in stable.node_ids()
        }
        self.in_sources: Dict[int, Set[int]] = {nid: set() for nid in stable.node_ids()}
        for src, dst, _ in stable.edges():
            self.in_sources[dst].add(src)

        # Sufficient statistics per cluster edge, and per-cluster sq error.
        self.out_stats: Dict[int, Dict[int, Tuple[float, float]]] = {}
        for nid in stable.node_ids():
            count = self.s_count[nid]
            self.out_stats[nid] = {
                dst: (count * float(k), count * float(k) ** 2)
                for dst, k in stable.out.get(nid, {}).items()
            }
        self.cluster_sq: Dict[int, float] = {nid: 0.0 for nid in stable.node_ids()}

        self.num_edges: int = stable.num_edges
        self.total_sq: float = 0.0
        # Version stamps for lazy heap invalidation.
        self.version: Dict[int, int] = {nid: 0 for nid in stable.node_ids()}

    # ------------------------------------------------------------------
    # Size and quality
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.members)

    def size_bytes(self) -> int:
        return NODE_BYTES * self.num_nodes + EDGE_BYTES * self.num_edges

    def alive(self, cid: int) -> bool:
        return cid in self.members

    def parents_of(self, cid: int) -> Set[int]:
        """Clusters with at least one edge into ``cid``."""
        return {self.assign[s] for s in self.in_sources[cid]}

    # ------------------------------------------------------------------
    # Candidate scoring
    # ------------------------------------------------------------------

    def evaluate_merge(self, u: int, v: int) -> MergeResult:
        """Score merging clusters ``u`` and ``v`` without applying it."""
        if u == v:
            raise ValueError("cannot merge a cluster with itself")
        count_w = self.count[u] + self.count[v]
        out_u, out_v = self.out_stats[u], self.out_stats[v]

        # --- out dimensions toward targets outside {u, v}: additive.
        merged: Dict[int, Tuple[float, float]] = {}
        for out in (out_u, out_v):
            for t, (s, sq) in out.items():
                if t == u or t == v:
                    continue
                acc = merged.get(t)
                merged[t] = (s + acc[0], sq + acc[1]) if acc else (s, sq)

        # --- self dimension toward w: recompute via gs (cross-terms).
        sources = self.in_sources[u] | self.in_sources[v]
        mem_u, mem_v = self.members[u], self.members[v]
        sum_w = sq_w = 0.0
        has_self = False
        for s_id in sources:
            if s_id in mem_u or s_id in mem_v:
                k = self.gs[s_id].get(u, 0.0) + self.gs[s_id].get(v, 0.0)
                if k:
                    sc = self.s_count[s_id]
                    sum_w += sc * k
                    sq_w += sc * k * k
                    has_self = True

        sq_new_w = sum(sq - (s * s) / count_w for s, sq in merged.values())
        if has_self:
            sq_new_w += sq_w - (sum_w * sum_w) / count_w
        errd = sq_new_w - self.cluster_sq[u] - self.cluster_sq[v]

        # --- parent dimensions: ->u and ->v collapse into ->w.
        parent_acc: Dict[int, List[float]] = {}
        for s_id in sources:
            p = self.assign[s_id]
            if p == u or p == v:
                continue
            k = self.gs[s_id].get(u, 0.0) + self.gs[s_id].get(v, 0.0)
            if not k:
                continue
            sc = self.s_count[s_id]
            acc = parent_acc.get(p)
            if acc is None:
                parent_acc[p] = [sc * k, sc * k * k]
            else:
                acc[0] += sc * k
                acc[1] += sc * k * k

        in_edges_removed = 0
        for p, (sp, sqp) in parent_acc.items():
            count_p = self.count[p]
            old_sq = 0.0
            old_dims = 0
            for t in (u, v):
                stats = self.out_stats[p].get(t)
                if stats is not None:
                    old_sq += stats[1] - (stats[0] * stats[0]) / count_p
                    old_dims += 1
            errd += (sqp - (sp * sp) / count_p) - old_sq
            in_edges_removed += old_dims - 1

        out_edges_old = len(out_u) + len(out_v)
        out_edges_new = len(merged) + (1 if has_self else 0)
        edges_removed = (out_edges_old - out_edges_new) + in_edges_removed
        sized = NODE_BYTES + EDGE_BYTES * edges_removed
        # errd can be legitimately negative: merging nodes whose dimensions
        # collapse (mutual edges, or a parent's two anti-correlated
        # dimensions becoming one) may reduce the total squared error.
        return MergeResult(errd, sized)

    # ------------------------------------------------------------------
    # Applying a merge
    # ------------------------------------------------------------------

    def apply_merge(self, u: int, v: int) -> int:
        """Merge cluster ``v`` into cluster ``u``; returns the merged id."""
        if not (self.alive(u) and self.alive(v)) or u == v:
            raise ValueError(f"cannot merge {u} and {v}")

        # 1. Re-group stable adjacencies pointing into u or v.
        src_union = self.in_sources[u] | self.in_sources.pop(v)
        for s_id in src_union:
            gs = self.gs[s_id]
            k = gs.pop(u, 0.0) + gs.pop(v, 0.0)
            if k:
                gs[u] = k
        self.in_sources[u] = src_union

        # 2. Absorb v's members.
        for s_id in self.members[v]:
            self.assign[s_id] = u
        self.members[u] |= self.members.pop(v)
        self.count[u] += self.count.pop(v)
        self.cluster_depth[u] = max(self.cluster_depth[u], self.cluster_depth.pop(v))
        self.cluster_label.pop(v)

        # 3. Rebuild u's out dimensions (additive except the self dim).
        out_u = self.out_stats[u]
        out_v = self.out_stats.pop(v)
        old_edges_out = len(out_u) + len(out_v)
        new_out: Dict[int, Tuple[float, float]] = {}
        for out in (out_u, out_v):
            for t, (s, sq) in out.items():
                if t == u or t == v:
                    continue
                acc = new_out.get(t)
                new_out[t] = (s + acc[0], sq + acc[1]) if acc else (s, sq)
        sum_w = sq_w = 0.0
        has_self = False
        mem_u = self.members[u]
        # Iterate the smaller of (sources, members) for the intersection.
        probe, other = (
            (src_union, mem_u) if len(src_union) <= len(mem_u) else (mem_u, src_union)
        )
        for s_id in probe:
            if s_id in other:
                k = self.gs[s_id].get(u, 0.0)
                if k:
                    sc = self.s_count[s_id]
                    sum_w += sc * k
                    sq_w += sc * k * k
                    has_self = True
        if has_self:
            new_out[u] = (sum_w, sq_w)
        self.out_stats[u] = new_out

        count_u = self.count[u]
        old_sq_u = self.cluster_sq[u] + self.cluster_sq.pop(v)
        new_sq_u = sum(sq - (s * s) / count_u for s, sq in new_out.values())
        self.cluster_sq[u] = new_sq_u
        self.total_sq += new_sq_u - old_sq_u
        self.num_edges += len(new_out) - old_edges_out

        # 4. Parents outside {u}: collapse their ->u / ->v dims into ->u.
        parent_acc: Dict[int, List[float]] = {}
        for s_id in src_union:
            p = self.assign[s_id]
            if p == u:
                continue
            k = self.gs[s_id].get(u, 0.0)
            if not k:
                continue
            sc = self.s_count[s_id]
            acc = parent_acc.get(p)
            if acc is None:
                parent_acc[p] = [sc * k, sc * k * k]
            else:
                acc[0] += sc * k
                acc[1] += sc * k * k
        for p, (sp, sqp) in parent_acc.items():
            out_p = self.out_stats[p]
            count_p = self.count[p]
            old_sq = 0.0
            old_dims = 0
            for t in (u, v):
                stats = out_p.pop(t, None)
                if stats is not None:
                    old_sq += stats[1] - (stats[0] * stats[0]) / count_p
                    old_dims += 1
            out_p[u] = (sp, sqp)
            new_sq = sqp - (sp * sp) / count_p
            self.cluster_sq[p] += new_sq - old_sq
            self.total_sq += new_sq - old_sq
            self.num_edges += 1 - old_dims
            self.version[p] = self.version.get(p, 0) + 1

        # 5. Invalidate heap entries touching u, its parents, its children.
        self.version[u] = self.version.get(u, 0) + 1
        self.version.pop(v, None)
        for child in self.out_stats[u]:
            if child != u:
                self.version[child] = self.version.get(child, 0) + 1
        return u

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_treesketch(self) -> TreeSketch:
        """Freeze the current partition into a TreeSketch synopsis."""
        sketch = TreeSketch()
        for cid, label in self.cluster_label.items():
            sketch.add_node(cid, label, self.count[cid])
        for cid, out in self.out_stats.items():
            count = self.count[cid]
            for t, (s, sq) in out.items():
                sketch.add_edge(cid, t, s / count)
                sketch.stats[(cid, t)] = (s, sq)
        sketch.root_id = self.assign[self.stable.root_id]
        sketch.doc_height = self.stable.doc_height
        sketch.members = {cid: set(mem) for cid, mem in self.members.items()}
        return sketch

    def check_invariants(self) -> None:
        """Expensive consistency audit used by the test suite."""
        # Edge count bookkeeping.
        actual_edges = sum(len(out) for out in self.out_stats.values())
        assert actual_edges == self.num_edges, (actual_edges, self.num_edges)
        # Cluster counts vs. members.
        for cid, mem in self.members.items():
            assert self.count[cid] == sum(self.s_count[s] for s in mem)
            for s_id in mem:
                assert self.assign[s_id] == cid
        # gs grouping matches stable adjacency under current assignment.
        for s_id, grouped in self.gs.items():
            expected: Dict[int, float] = {}
            for dst, k in self.stable.out.get(s_id, {}).items():
                c = self.assign[dst]
                expected[c] = expected.get(c, 0.0) + float(k)
            assert grouped == expected, (s_id, grouped, expected)
        # Stats match a from-scratch recomputation.
        for cid, mem in self.members.items():
            fresh: Dict[int, List[float]] = {}
            for s_id in mem:
                sc = self.s_count[s_id]
                for t, k in self.gs[s_id].items():
                    acc = fresh.setdefault(t, [0.0, 0.0])
                    acc[0] += sc * k
                    acc[1] += sc * k * k
            stored = self.out_stats[cid]
            assert set(fresh) == set(stored), (cid, set(fresh), set(stored))
            for t, (a, b) in fresh.items():
                sa, sb = stored[t]
                assert abs(a - sa) < 1e-6 and abs(b - sb) < 1e-6
