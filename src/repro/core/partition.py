"""Working state of TSBUILD: a partition of stable-summary nodes.

TSBUILD (Fig. 5) starts from the count-stable summary and repeatedly merges
synopsis nodes.  :class:`MergePartition` maintains the partition of stable
classes into clusters together with everything needed to score and apply
merges *without touching base data* (the paper's sufficient-statistics
scheme, Section 4.2):

* ``gs[s]``: for every stable class ``s``, its out-adjacency grouped by the
  *current* clusters (``cluster id -> total child count``).  This is the
  "small subset of the stable summary" that must be consulted when merges
  of children create cross-terms that plain per-edge statistics cannot
  capture.
* ``out_stats[c][t] = (sum, sum_sq)``: per cluster-edge sufficient
  statistics of the per-element child counts, from which both the average
  edge counts and the squared-error metric follow in closed form.
* ``in_sources[c]``: the stable classes with at least one edge into
  cluster ``c`` (the reverse index that makes parent-side updates local).

Merging clusters ``u`` and ``v`` into ``w``:

* dimensions toward targets outside ``{u, v}`` are *additive* (every
  element belongs to exactly one of the extents, so sums and sums of
  squares just add);
* the dimension toward ``w`` itself (when ``u``/``v`` had edges among
  themselves) needs per-stable-class recomputation via ``gs`` because an
  element's counts toward ``u`` and ``v`` combine: ``(k_u + k_v)^2`` has a
  cross-term;
* parent clusters see their two dimensions ``->u``, ``->v`` collapse into
  one ``->w`` dimension, likewise recomputed via ``gs``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.size import EDGE_BYTES, NODE_BYTES
from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch

# A scored merge as consumed by CREATEPOOL / TSBUILD: (ratio, errd, sized).
ScoredMerge = Tuple[float, float, int]


class MergeResult:
    """Score of a candidate merge: errd (squared-error increase) and sized
    (synopsis-size decrease in bytes).  ``ratio`` is the marginal-gain key
    of the TSBUILD heap.

    Tiebreak for degenerate scores: a merge with ``sized <= 0`` saves no
    space, so it is *non-improving by definition* -- ``ratio`` reports
    ``+inf`` (instead of raising ZeroDivisionError) and candidate
    generation skips such entries at pool insertion.  With the library's
    size model this cannot arise from real summaries (a merge always
    removes one node, so ``sized >= NODE_BYTES``), but synthetic or
    future size models must not crash the heap.
    """

    __slots__ = ("errd", "sized")

    def __init__(self, errd: float, sized: int) -> None:
        self.errd = errd
        self.sized = sized

    @property
    def ratio(self) -> float:
        return self.errd / self.sized if self.sized > 0 else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeResult(errd={self.errd:.3f}, sized={self.sized})"


class MergePartition:
    """Mutable clustering of the stable summary's classes."""

    def __init__(self, stable: StableSummary) -> None:
        self.stable = stable
        self.s_count: Dict[int, int] = dict(stable.count)
        self.s_label: Dict[int, str] = dict(stable.label)
        self.s_depth: Dict[int, int] = dict(stable.depth)

        # Cluster state; initially one cluster per stable class (same ids).
        self.members: Dict[int, Set[int]] = {
            nid: {nid} for nid in stable.node_ids()
        }
        self.count: Dict[int, int] = dict(stable.count)
        self.cluster_label: Dict[int, str] = dict(stable.label)
        self.cluster_depth: Dict[int, int] = dict(stable.depth)
        self.assign: Dict[int, int] = {nid: nid for nid in stable.node_ids()}

        # Grouped stable out-adjacency and its reverse index.
        self.gs: Dict[int, Dict[int, float]] = {
            nid: {dst: float(k) for dst, k in stable.out.get(nid, {}).items()}
            for nid in stable.node_ids()
        }
        self.in_sources: Dict[int, Set[int]] = {nid: set() for nid in stable.node_ids()}
        for src, dst, _ in stable.edges():
            self.in_sources[dst].add(src)

        # Sufficient statistics per cluster edge, and per-cluster sq error.
        self.out_stats: Dict[int, Dict[int, Tuple[float, float]]] = {}
        for nid in stable.node_ids():
            count = self.s_count[nid]
            self.out_stats[nid] = {
                dst: (count * float(k), count * float(k) ** 2)
                for dst, k in stable.out.get(nid, {}).items()
            }
        self.cluster_sq: Dict[int, float] = {nid: 0.0 for nid in stable.node_ids()}

        # Fused per-source record [gs dict, owning cluster, element count]
        # for the scoring hot loop: one lookup instead of three.  The gs
        # dict is shared by object identity (mutated in place); the owner
        # slot is kept in step with ``assign`` by ``apply_merge``.
        self.src: Dict[int, list] = {
            nid: [self.gs[nid], nid, self.s_count[nid]]
            for nid in stable.node_ids()
        }

        self.num_edges: int = stable.num_edges
        self.total_sq: float = 0.0
        # Version stamps for lazy heap invalidation.  ``version`` bumps on
        # *every* change that can move a cluster's merge score (its own
        # state, a parent's dims, a parent's count); ``struct_version``
        # bumps only on child-side changes -- the cluster's own dims or
        # count.  Merge scores read both sides, so the memo and the heap
        # key on ``version``; CREATEPOOL's structural key reads only the
        # child side, so its cache keys on ``struct_version`` and
        # survives parent-only updates (see docs/PERFORMANCE.md).
        self.version: Dict[int, int] = {nid: 0 for nid in stable.node_ids()}
        self.struct_version: Dict[int, int] = {nid: 0 for nid in stable.node_ids()}
        # Optional versioned memo of merge scores (see enable_memo).
        self.merge_memo: Optional[Dict[Tuple[int, int], Tuple[int, int, float, float, int]]] = None
        self.memo_hits: int = 0
        self.memo_misses: int = 0

    # ------------------------------------------------------------------
    # Size and quality
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.members)

    def size_bytes(self) -> int:
        return NODE_BYTES * self.num_nodes + EDGE_BYTES * self.num_edges

    def alive(self, cid: int) -> bool:
        return cid in self.members

    def parents_of(self, cid: int) -> Set[int]:
        """Clusters with at least one edge into ``cid``."""
        return {self.assign[s] for s in self.in_sources[cid]}

    def source_out(self, s_id: int) -> Dict[int, int]:
        """Out-adjacency of one stable class (ground truth for ``gs``).

        The base partition reads the frozen summary; live partitions
        (repro.core.live) override this with their evolving adjacency.
        """
        return self.stable.out.get(s_id, {})

    def root_cluster(self) -> int:
        """Cluster currently holding the document root class."""
        return self.assign[self.stable.root_id]

    def doc_height(self) -> int:
        """Document height recorded on exported sketches."""
        return self.stable.doc_height

    def structural_key(self, cid: int) -> Tuple[float, float, int]:
        """CREATEPOOL's cheap locality key: child-side state only
        (out-degree, average total child count, extent size)."""
        out = self.out_stats[cid]
        total = sum(s for s, _ in out.values()) / max(1, self.count[cid])
        return (len(out), total, self.count[cid])

    # ------------------------------------------------------------------
    # Candidate scoring
    # ------------------------------------------------------------------

    def evaluate_merge(self, u: int, v: int) -> MergeResult:
        """Score merging clusters ``u`` and ``v`` without applying it."""
        errd, sized = self._eval_raw(u, v)
        # errd can be legitimately negative: merging nodes whose dimensions
        # collapse (mutual edges, or a parent's two anti-correlated
        # dimensions becoming one) may reduce the total squared error.
        return MergeResult(errd, sized)

    def _eval_raw(self, u: int, v: int) -> Tuple[float, int]:
        """Hot-path scoring core: ``(errd, sized)`` for merging ``u, v``.

        Bit-identical to :meth:`evaluate_merge_reference` — every floating-
        point accumulation happens on the same values in the same order; the
        rewrite only collapses the two passes over ``sources`` into one and
        hoists attribute lookups (see tests/test_build_equivalence.py).
        """
        if u == v:
            raise ValueError("cannot merge a cluster with itself")
        count = self.count
        out_stats = self.out_stats
        count_w = count[u] + count[v]
        out_u, out_v = out_stats[u], out_stats[v]

        # --- out dimensions toward targets outside {u, v}: additive.
        merged = dict(out_u)
        merged.pop(u, None)
        merged.pop(v, None)
        merged_get = merged.get
        for t, st in out_v.items():
            if t == u or t == v:
                continue
            acc = merged_get(t)
            merged[t] = (st[0] + acc[0], st[1] + acc[1]) if acc else st

        # --- self dimension toward w and parent dimensions, in one pass
        # over the union of stable sources (``assign[s] in {u, v}`` is
        # exactly the reference's membership test against members[u/v];
        # ``sc*k*k`` associates left, so reusing ``t = sc*k`` is exact).
        sources = self.in_sources[u] | self.in_sources[v]
        src_all = self.src
        sum_w = sq_w = 0.0
        has_self = False
        parent_acc: Dict[int, List[float]] = {}
        parent_get = parent_acc.get
        for s_id in sources:
            rec = src_all[s_id]
            gs = rec[0]
            k = gs.get(u, 0.0) + gs.get(v, 0.0)
            if not k:
                continue
            p = rec[1]
            t = rec[2] * k
            if p == u or p == v:
                sum_w += t
                sq_w += t * k
                has_self = True
                continue
            acc = parent_get(p)
            if acc is None:
                parent_acc[p] = [t, t * k]
            else:
                acc[0] += t
                acc[1] += t * k

        sq_new_w = 0.0
        for s, sq in merged.values():
            sq_new_w += sq - (s * s) / count_w
        if has_self:
            sq_new_w += sq_w - (sum_w * sum_w) / count_w
        cluster_sq = self.cluster_sq
        errd = sq_new_w - cluster_sq[u] - cluster_sq[v]

        in_edges_removed = 0
        for p, acc in parent_acc.items():
            count_p = count[p]
            old_sq = 0.0
            old_dims = 0
            out_p = out_stats[p]
            stats = out_p.get(u)
            if stats is not None:
                old_sq += stats[1] - (stats[0] * stats[0]) / count_p
                old_dims += 1
            stats = out_p.get(v)
            if stats is not None:
                old_sq += stats[1] - (stats[0] * stats[0]) / count_p
                old_dims += 1
            errd += (acc[1] - (acc[0] * acc[0]) / count_p) - old_sq
            in_edges_removed += old_dims - 1

        out_edges_old = len(out_u) + len(out_v)
        out_edges_new = len(merged) + (1 if has_self else 0)
        edges_removed = (out_edges_old - out_edges_new) + in_edges_removed
        return errd, NODE_BYTES + EDGE_BYTES * edges_removed

    def evaluate_merge_reference(self, u: int, v: int) -> MergeResult:
        """The seed implementation of :meth:`evaluate_merge`, verbatim.

        Kept as the ground truth the optimized scorer is proven against
        (property tests assert bitwise-equal ``errd``/``sized``) and as the
        scoring path of the ``reference`` build mode that the benchmark
        feed uses for its "before" measurements.
        """
        if u == v:
            raise ValueError("cannot merge a cluster with itself")
        count_w = self.count[u] + self.count[v]
        out_u, out_v = self.out_stats[u], self.out_stats[v]

        # --- out dimensions toward targets outside {u, v}: additive.
        merged: Dict[int, Tuple[float, float]] = {}
        for out in (out_u, out_v):
            for t, (s, sq) in out.items():
                if t == u or t == v:
                    continue
                acc = merged.get(t)
                merged[t] = (s + acc[0], sq + acc[1]) if acc else (s, sq)

        # --- self dimension toward w: recompute via gs (cross-terms).
        sources = self.in_sources[u] | self.in_sources[v]
        mem_u, mem_v = self.members[u], self.members[v]
        sum_w = sq_w = 0.0
        has_self = False
        for s_id in sources:
            if s_id in mem_u or s_id in mem_v:
                k = self.gs[s_id].get(u, 0.0) + self.gs[s_id].get(v, 0.0)
                if k:
                    sc = self.s_count[s_id]
                    sum_w += sc * k
                    sq_w += sc * k * k
                    has_self = True

        sq_new_w = sum(sq - (s * s) / count_w for s, sq in merged.values())
        if has_self:
            sq_new_w += sq_w - (sum_w * sum_w) / count_w
        errd = sq_new_w - self.cluster_sq[u] - self.cluster_sq[v]

        # --- parent dimensions: ->u and ->v collapse into ->w.
        parent_acc: Dict[int, List[float]] = {}
        for s_id in sources:
            p = self.assign[s_id]
            if p == u or p == v:
                continue
            k = self.gs[s_id].get(u, 0.0) + self.gs[s_id].get(v, 0.0)
            if not k:
                continue
            sc = self.s_count[s_id]
            acc = parent_acc.get(p)
            if acc is None:
                parent_acc[p] = [sc * k, sc * k * k]
            else:
                acc[0] += sc * k
                acc[1] += sc * k * k

        in_edges_removed = 0
        for p, (sp, sqp) in parent_acc.items():
            count_p = self.count[p]
            old_sq = 0.0
            old_dims = 0
            for t in (u, v):
                stats = self.out_stats[p].get(t)
                if stats is not None:
                    old_sq += stats[1] - (stats[0] * stats[0]) / count_p
                    old_dims += 1
            errd += (sqp - (sp * sp) / count_p) - old_sq
            in_edges_removed += old_dims - 1

        out_edges_old = len(out_u) + len(out_v)
        out_edges_new = len(merged) + (1 if has_self else 0)
        edges_removed = (out_edges_old - out_edges_new) + in_edges_removed
        sized = NODE_BYTES + EDGE_BYTES * edges_removed
        return MergeResult(errd, sized)

    # ------------------------------------------------------------------
    # Versioned score memoization
    # ------------------------------------------------------------------

    def enable_memo(self) -> None:
        """Start memoizing merge scores under the version stamps.

        A memo entry ``(u, v) -> (ver_u, ver_v, ratio, errd, sized)`` is
        valid while both operands keep the versions it was computed at —
        the exact invalidation discipline the TSBUILD heap already relies
        on (``apply_merge`` bumps the stamp of the merged cluster, its
        parents, and its children, which covers every input of
        ``_eval_raw``).  Stale entries are overwritten in place, so the
        memo is bounded by the number of distinct pairs ever scored.
        """
        if self.merge_memo is None:
            self.merge_memo = {}

    def scored_merge(self, u: int, v: int) -> ScoredMerge:
        """Memo-aware scoring: ``(ratio, errd, sized)`` for merging u, v.

        Falls back to plain scoring when the memo is disabled.  Hits are
        the "skipped rescores" TSBUILD reports as ``tsbuild.memo_hits``.
        """
        memo = self.merge_memo
        if memo is None:
            errd, sized = self._eval_raw(u, v)
            return errd / sized if sized > 0 else float("inf"), errd, sized
        version = self.version
        ver_u = version.get(u, 0)
        ver_v = version.get(v, 0)
        key = (u, v)
        entry = memo.get(key)
        if entry is not None and entry[0] == ver_u and entry[1] == ver_v:
            self.memo_hits += 1
            return entry[2], entry[3], entry[4]
        self.memo_misses += 1
        errd, sized = self._eval_raw(u, v)
        ratio = errd / sized if sized > 0 else float("inf")
        memo[key] = (ver_u, ver_v, ratio, errd, sized)
        return ratio, errd, sized

    def eval_block(self, pairs: List[Tuple[int, int]],
                   min_sources: Optional[int] = None) -> List[Tuple[float, int]]:
        """``(errd, sized)`` per pair (``min_sources`` is a routing hint
        for the vectorized override; it never changes the result).

        Serial here; :class:`repro.core.kernel.KernelPartition` overrides
        this with a vectorized pass when its numpy path is enabled.  Both
        implementations are bitwise-identical to per-pair ``_eval_raw``.
        """
        raw = self._eval_raw
        return [raw(u, v) for u, v in pairs]

    # ------------------------------------------------------------------
    # Applying a merge
    # ------------------------------------------------------------------

    def apply_merge(self, u: int, v: int) -> int:
        """Merge cluster ``v`` into cluster ``u``; returns the merged id."""
        if not (self.alive(u) and self.alive(v)) or u == v:
            raise ValueError(f"cannot merge {u} and {v}")

        # 1. Re-group stable adjacencies pointing into u or v.
        src_union = self.in_sources[u] | self.in_sources.pop(v)
        for s_id in src_union:
            gs = self.gs[s_id]
            k = gs.pop(u, 0.0) + gs.pop(v, 0.0)
            if k:
                gs[u] = k
        self.in_sources[u] = src_union

        # 2. Absorb v's members.
        src = self.src
        for s_id in self.members[v]:
            self.assign[s_id] = u
            src[s_id][1] = u
        self.members[u] |= self.members.pop(v)
        self.count[u] += self.count.pop(v)
        self.cluster_depth[u] = max(self.cluster_depth[u], self.cluster_depth.pop(v))
        self.cluster_label.pop(v)

        # 3. Rebuild u's out dimensions (additive except the self dim).
        out_u = self.out_stats[u]
        out_v = self.out_stats.pop(v)
        old_edges_out = len(out_u) + len(out_v)
        new_out: Dict[int, Tuple[float, float]] = {}
        for out in (out_u, out_v):
            for t, (s, sq) in out.items():
                if t == u or t == v:
                    continue
                acc = new_out.get(t)
                new_out[t] = (s + acc[0], sq + acc[1]) if acc else (s, sq)
        sum_w = sq_w = 0.0
        has_self = False
        mem_u = self.members[u]
        # Iterate the smaller of (sources, members) for the intersection.
        probe, other = (
            (src_union, mem_u) if len(src_union) <= len(mem_u) else (mem_u, src_union)
        )
        for s_id in probe:
            if s_id in other:
                k = self.gs[s_id].get(u, 0.0)
                if k:
                    sc = self.s_count[s_id]
                    sum_w += sc * k
                    sq_w += sc * k * k
                    has_self = True
        if has_self:
            new_out[u] = (sum_w, sq_w)
        self.out_stats[u] = new_out

        count_u = self.count[u]
        old_sq_u = self.cluster_sq[u] + self.cluster_sq.pop(v)
        new_sq_u = sum(sq - (s * s) / count_u for s, sq in new_out.values())
        self.cluster_sq[u] = new_sq_u
        self.total_sq += new_sq_u - old_sq_u
        self.num_edges += len(new_out) - old_edges_out

        # 4. Parents outside {u}: collapse their ->u / ->v dims into ->u.
        parent_acc: Dict[int, List[float]] = {}
        for s_id in src_union:
            p = self.assign[s_id]
            if p == u:
                continue
            k = self.gs[s_id].get(u, 0.0)
            if not k:
                continue
            sc = self.s_count[s_id]
            acc = parent_acc.get(p)
            if acc is None:
                parent_acc[p] = [sc * k, sc * k * k]
            else:
                acc[0] += sc * k
                acc[1] += sc * k * k
        for p, (sp, sqp) in parent_acc.items():
            out_p = self.out_stats[p]
            count_p = self.count[p]
            old_sq = 0.0
            old_dims = 0
            for t in (u, v):
                stats = out_p.pop(t, None)
                if stats is not None:
                    old_sq += stats[1] - (stats[0] * stats[0]) / count_p
                    old_dims += 1
            out_p[u] = (sp, sqp)
            new_sq = sqp - (sp * sp) / count_p
            self.cluster_sq[p] += new_sq - old_sq
            self.total_sq += new_sq - old_sq
            self.num_edges += 1 - old_dims
            self.version[p] = self.version.get(p, 0) + 1
            self.struct_version[p] = self.struct_version.get(p, 0) + 1

        # 5. Invalidate heap entries touching u, its parents, its children.
        # Children get a full-version bump only: their own dims and count
        # are untouched (the change is on their parent's side), so their
        # structural key stays valid under ``struct_version``.
        self.version[u] = self.version.get(u, 0) + 1
        self.struct_version[u] = self.struct_version.get(u, 0) + 1
        self.version.pop(v, None)
        self.struct_version.pop(v, None)
        for child in self.out_stats[u]:
            if child != u:
                self.version[child] = self.version.get(child, 0) + 1
        return u

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_treesketch(self) -> TreeSketch:
        """Freeze the current partition into a TreeSketch synopsis."""
        sketch = TreeSketch()
        for cid, label in self.cluster_label.items():
            sketch.add_node(cid, label, self.count[cid])
        for cid, out in self.out_stats.items():
            count = self.count[cid]
            for t, (s, sq) in out.items():
                sketch.add_edge(cid, t, s / count)
                sketch.stats[(cid, t)] = (s, sq)
        sketch.root_id = self.root_cluster()
        sketch.doc_height = self.doc_height()
        sketch.members = {cid: set(mem) for cid, mem in self.members.items()}
        return sketch

    def check_invariants(self) -> None:
        """Expensive consistency audit used by the test suite."""
        # Edge count bookkeeping.
        actual_edges = sum(len(out) for out in self.out_stats.values())
        assert actual_edges == self.num_edges, (actual_edges, self.num_edges)
        # Cluster counts vs. members.
        for cid, mem in self.members.items():
            assert self.count[cid] == sum(self.s_count[s] for s in mem)
            for s_id in mem:
                assert self.assign[s_id] == cid
        # gs grouping matches stable adjacency under current assignment.
        for s_id, grouped in self.gs.items():
            expected: Dict[int, float] = {}
            for dst, k in self.source_out(s_id).items():
                c = self.assign[dst]
                expected[c] = expected.get(c, 0.0) + float(k)
            assert grouped == expected, (s_id, grouped, expected)
        # Stats match a from-scratch recomputation.
        for cid, mem in self.members.items():
            fresh: Dict[int, List[float]] = {}
            for s_id in mem:
                sc = self.s_count[s_id]
                for t, k in self.gs[s_id].items():
                    acc = fresh.setdefault(t, [0.0, 0.0])
                    acc[0] += sc * k
                    acc[1] += sc * k * k
            stored = self.out_stats[cid]
            assert set(fresh) == set(stored), (cid, set(fresh), set(stored))
            for t, (a, b) in fresh.items():
                sa, sb = stored[t]
                assert abs(a - sa) < 1e-6 and abs(b - sb) < 1e-6
