"""Persistence for synopses: save/load as JSON.

A synopsis is only useful if it can be built once and shipped to the
query-time component, so both summary types serialize to a compact JSON
document (stable summaries losslessly; TreeSketches including their
sufficient statistics, so squared error survives the round trip).

Paths ending in ``.gz`` are read and written gzip-compressed
transparently -- ``save_synopsis(sketch, "xmark.json.gz")`` ships a
sketch to a serving host at a fraction of the plain-JSON size, and
``load_synopsis`` (and therefore the serve registry and every CLI
subcommand that loads a synopsis) accepts either form.
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Dict, Union

from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch

_FORMAT_VERSION = 1


def synopsis_to_dict(synopsis: Union[StableSummary, TreeSketch]) -> Dict[str, Any]:
    """Plain-dict form of a synopsis (JSON-ready)."""
    kind = "stable" if isinstance(synopsis, StableSummary) else "treesketch"
    payload: Dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "root_id": synopsis.root_id,
        "doc_height": synopsis.doc_height,
        "nodes": [
            [nid, synopsis.label[nid], synopsis.count[nid]]
            for nid in sorted(synopsis.label)
        ],
        "edges": [
            [src, dst, weight] for src, dst, weight in sorted(synopsis.edges())
        ],
    }
    if isinstance(synopsis, StableSummary):
        payload["depth"] = [
            [nid, synopsis.depth[nid]] for nid in sorted(synopsis.depth)
        ]
    else:
        payload["stats"] = [
            [src, dst, s, sq] for (src, dst), (s, sq) in sorted(synopsis.stats.items())
        ]
        if synopsis.members:
            payload["members"] = [
                [nid, sorted(classes)] for nid, classes in sorted(synopsis.members.items())
            ]
        if synopsis.values:
            payload["values"] = [
                [
                    nid,
                    sorted(summary.top.items()),
                    summary.rest_count,
                    summary.rest_distinct,
                    summary.null_count,
                ]
                for nid, summary in sorted(synopsis.values.items())
            ]
    return payload


def synopsis_from_dict(payload: Dict[str, Any]) -> Union[StableSummary, TreeSketch]:
    """Inverse of :func:`synopsis_to_dict`."""
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported synopsis format version {version!r}")
    kind = payload.get("kind")
    if kind == "stable":
        synopsis: Union[StableSummary, TreeSketch] = StableSummary()
    elif kind == "treesketch":
        synopsis = TreeSketch()
    else:
        raise ValueError(f"unknown synopsis kind {kind!r}")

    for nid, label, count in payload["nodes"]:
        synopsis.add_node(int(nid), label, int(count))
    for src, dst, weight in payload["edges"]:
        synopsis.add_edge(int(src), int(dst), float(weight))
    synopsis.root_id = int(payload["root_id"])
    synopsis.doc_height = int(payload["doc_height"])

    if isinstance(synopsis, StableSummary):
        synopsis.depth = {int(nid): int(d) for nid, d in payload.get("depth", [])}
    else:
        synopsis.stats = {
            (int(src), int(dst)): (float(s), float(sq))
            for src, dst, s, sq in payload.get("stats", [])
        }
        synopsis.members = {
            int(nid): set(int(c) for c in classes)
            for nid, classes in payload.get("members", [])
        }
        if payload.get("values"):
            from repro.values.summary import ValueSummary

            synopsis.values = {
                int(nid): ValueSummary(
                    top={v: int(c) for v, c in top},
                    rest_count=int(rest_count),
                    rest_distinct=int(rest_distinct),
                    null_count=int(null_count),
                )
                for nid, top, rest_count, rest_distinct, null_count
                in payload["values"]
            }
    synopsis.validate()
    return synopsis


def _open_text(path: str, mode: str):
    """Open ``path`` for text I/O, gzip-compressed iff it ends in .gz."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_synopsis(synopsis: Union[StableSummary, TreeSketch], path: str) -> None:
    """Write a synopsis to ``path`` as JSON (gzipped for ``*.gz`` paths)."""
    with _open_text(path, "w") as handle:
        json.dump(synopsis_to_dict(synopsis), handle, separators=(",", ":"))


def load_synopsis(path: str) -> Union[StableSummary, TreeSketch]:
    """Read a synopsis written by :func:`save_synopsis` (``.json[.gz]``)."""
    with _open_text(path, "r") as handle:
        return synopsis_from_dict(json.load(handle))
