"""Persistence for synopses: JSON, gzipped JSON, and binary ``.tsb``.

A synopsis is only useful if it can be built once and shipped to the
query-time component, so both summary types serialize to a compact JSON
document (stable summaries losslessly; TreeSketches including their
sufficient statistics, so squared error survives the round trip).

Paths ending in ``.gz`` are read and written gzip-compressed
transparently -- ``save_synopsis(sketch, "xmark.json.gz")`` ships a
sketch to a serving host at a fraction of the plain-JSON size.  Paths
ending in ``.tsb`` (or an explicit ``format="tsb"``) use the binary
mmap-able store from :mod:`repro.core.store`, whose load time is
O(header) instead of O(document) -- see docs/STORAGE.md.

:func:`load_synopsis` sniffs the actual on-disk format from magic bytes
(gzip ``1f 8b``, the ``.tsb`` magic, else JSON), so the serve registry
and every CLI subcommand accept any of the three forms regardless of
how the file is named.  Loads are timed into the ``store.load.json`` /
``store.load.tsb`` histograms via :mod:`repro.obs`.
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Dict, Union

from repro.core.stable import StableSummary
from repro.core.store import (
    TSB_MAGIC,
    SynopsisFormatError,
    read_tsb,
    write_tsb,
)
from repro.core.treesketch import TreeSketch

_FORMAT_VERSION = 1


def synopsis_to_dict(synopsis: Union[StableSummary, TreeSketch]) -> Dict[str, Any]:
    """Plain-dict form of a synopsis (JSON-ready)."""
    kind = "stable" if isinstance(synopsis, StableSummary) else "treesketch"
    payload: Dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "root_id": synopsis.root_id,
        "doc_height": synopsis.doc_height,
        "nodes": [
            [nid, synopsis.label[nid], synopsis.count[nid]]
            for nid in sorted(synopsis.label)
        ],
        "edges": [
            [src, dst, weight] for src, dst, weight in sorted(synopsis.edges())
        ],
    }
    if isinstance(synopsis, StableSummary):
        payload["depth"] = [
            [nid, synopsis.depth[nid]] for nid in sorted(synopsis.depth)
        ]
    else:
        payload["stats"] = [
            [src, dst, s, sq] for (src, dst), (s, sq) in sorted(synopsis.stats.items())
        ]
        if synopsis.members:
            payload["members"] = [
                [nid, sorted(classes)] for nid, classes in sorted(synopsis.members.items())
            ]
        if synopsis.values:
            payload["values"] = [
                [
                    nid,
                    sorted(summary.top.items()),
                    summary.rest_count,
                    summary.rest_distinct,
                    summary.null_count,
                ]
                for nid, summary in sorted(synopsis.values.items())
            ]
    return payload


def synopsis_from_dict(payload: Dict[str, Any]) -> Union[StableSummary, TreeSketch]:
    """Inverse of :func:`synopsis_to_dict`."""
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported synopsis format version {version!r}")
    kind = payload.get("kind")
    if kind == "stable":
        synopsis: Union[StableSummary, TreeSketch] = StableSummary()
    elif kind == "treesketch":
        synopsis = TreeSketch()
    else:
        raise ValueError(f"unknown synopsis kind {kind!r}")

    for nid, label, count in payload["nodes"]:
        synopsis.add_node(int(nid), label, int(count))
    for src, dst, weight in payload["edges"]:
        synopsis.add_edge(int(src), int(dst), float(weight))
    synopsis.root_id = int(payload["root_id"])
    synopsis.doc_height = int(payload["doc_height"])

    if isinstance(synopsis, StableSummary):
        synopsis.depth = {int(nid): int(d) for nid, d in payload.get("depth", [])}
    else:
        synopsis.stats = {
            (int(src), int(dst)): (float(s), float(sq))
            for src, dst, s, sq in payload.get("stats", [])
        }
        synopsis.members = {
            int(nid): set(int(c) for c in classes)
            for nid, classes in payload.get("members", [])
        }
        if payload.get("values"):
            from repro.values.summary import ValueSummary

            synopsis.values = {
                int(nid): ValueSummary(
                    top={v: int(c) for v, c in top},
                    rest_count=int(rest_count),
                    rest_distinct=int(rest_distinct),
                    null_count=int(null_count),
                )
                for nid, top, rest_count, rest_distinct, null_count
                in payload["values"]
            }
    synopsis.validate()
    return synopsis


def _open_text(path: str, mode: str):
    """Open ``path`` for text I/O, gzip-compressed iff it ends in .gz."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def sniff_format(path: str) -> str:
    """The actual on-disk format of ``path``: ``tsb``, ``json.gz``, ``json``.

    Decided from magic bytes, not the file name, so a ``.tsb`` store
    renamed ``sketch.json`` (or vice versa) still loads correctly.
    """
    with open(path, "rb") as handle:
        head = handle.read(len(TSB_MAGIC))
    if head == TSB_MAGIC:
        return "tsb"
    if head[:2] == b"\x1f\x8b":
        return "json.gz"
    return "json"


def save_synopsis(synopsis: Union[StableSummary, TreeSketch], path: str,
                  format: str = "auto") -> None:
    """Write a synopsis to ``path``.

    ``format="auto"`` (the default) follows the extension: ``*.tsb`` is
    written binary, ``*.gz`` gzip-JSON, anything else plain JSON.  An
    explicit ``"json"`` or ``"tsb"`` overrides the extension.
    """
    if format == "auto":
        format = "tsb" if str(path).endswith(".tsb") else "json"
    if format == "tsb":
        write_tsb(synopsis, path)
    elif format == "json":
        with _open_text(path, "w") as handle:
            json.dump(synopsis_to_dict(synopsis), handle,
                      separators=(",", ":"))
    else:
        raise ValueError(f"unknown synopsis format {format!r}")


def save_synopsis_binary(synopsis: Union[StableSummary, TreeSketch],
                         path: str) -> int:
    """Write ``synopsis`` as a binary ``.tsb`` store; returns its checksum."""
    return write_tsb(synopsis, path)


def load_synopsis(path: str) -> Union[StableSummary, TreeSketch]:
    """Read a synopsis in any supported format (sniffed by magic bytes).

    ``.tsb`` stores come back as mmap-backed lazy synopses (see
    :mod:`repro.core.store`) whose answers are bitwise-identical to the
    JSON path; JSON and gzip-JSON load eagerly as before.
    """
    from repro.obs import get_clock, get_metrics

    clock = get_clock()
    start = clock.now()
    fmt = sniff_format(path)
    if fmt == "tsb":
        synopsis: Union[StableSummary, TreeSketch] = read_tsb(path)
    else:
        try:
            if fmt == "json.gz":
                with gzip.open(path, "rt", encoding="utf-8") as handle:
                    synopsis = synopsis_from_dict(json.load(handle))
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    synopsis = synopsis_from_dict(json.load(handle))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            # Binary junk that is neither the .tsb magic nor JSON text --
            # most commonly a store whose header got clobbered.
            raise SynopsisFormatError(
                f"{path}: not a recognized synopsis (bad magic for a .tsb "
                f"store, and not parseable as JSON: {exc})") from exc
    name = "store.load.tsb" if fmt == "tsb" else "store.load.json"
    get_metrics().histogram(name).observe(clock.now() - start)
    return synopsis
