"""Count stability and the BUILD_STABLE algorithm (paper Section 3.2, Fig. 4).

A pair of element classes ``(u, v)`` is *k-stable* when every element of
``u`` has exactly ``k`` children in ``v``; a synopsis is *count stable* when
every class pair is k-stable for some k.  The minimal count-stable summary
is unique (Lemma 3.1), losslessly encodes the document's tree structure, and
is recovered here bottom-up in linear time by hashing each element's
``(label, child-class signature)``.

``expand_stable`` implements the ``Expand`` function of Lemma 3.1: it
reconstructs a document isomorphic to the original from the stable summary.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.size import synopsis_bytes
from repro.core.synopsis import GraphSynopsis
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


class StableSummary(GraphSynopsis):
    """The minimal count-stable summary of one document.

    Edge weights are the exact integer child counts ``k`` of Definition 3.1.
    ``depth`` records each class's depth (the max over its extent of the
    longest downward path to a leaf), which CREATEPOOL uses to schedule
    merges bottom-up.  ``extent`` optionally keeps the member oids of every
    class (for tests and for the twig-XSketch baseline, which needs element
    -> class assignments).
    """

    def __init__(self) -> None:
        super().__init__()
        self.depth: Dict[int, int] = {}
        self.extent: Optional[Dict[int, List[int]]] = None

    def size_bytes(self) -> int:
        """Storage footprint under the library's synopsis size model."""
        return synopsis_bytes(self.num_nodes, self.num_edges)

    def class_of(self) -> Dict[int, int]:
        """Element oid -> class id (requires ``keep_extents=True``)."""
        if self.extent is None:
            raise ValueError("summary was built without keep_extents=True")
        mapping: Dict[int, int] = {}
        for nid, oids in self.extent.items():
            for oid in oids:
                mapping[oid] = nid
        return mapping


def build_stable(tree: XMLTree, keep_extents: bool = False) -> StableSummary:
    """BUILD_STABLE (paper Fig. 4): minimal count-stable summary in O(|T|).

    Processes elements in post-order; an element's class is determined by
    its label plus the multiset of (child class, count) pairs, which are
    already known when the element is visited.
    """
    summary = StableSummary()
    if keep_extents:
        summary.extent = {}

    # Signature -> class id.  A signature is (label, sorted child-class
    # count pairs); leaves of equal label share the signature (label, ()).
    classes: Dict[Tuple[str, Tuple[Tuple[int, int], ...]], int] = {}
    class_of_oid: Dict[int, int] = {}

    for elem in tree.root.iter_postorder():
        child_counts: Counter = Counter(
            class_of_oid[child.oid] for child in elem.children
        )
        signature = (elem.label, tuple(sorted(child_counts.items())))
        nid = classes.get(signature)
        if nid is None:
            nid = len(classes)
            classes[signature] = nid
            summary.add_node(nid, elem.label, 0)
            for child_nid, k in signature[1]:
                summary.add_edge(nid, child_nid, k)
            summary.depth[nid] = tree.depth_below(elem)
            if summary.extent is not None:
                summary.extent[nid] = []
        summary.count[nid] += 1
        if summary.extent is not None:
            summary.extent[nid].append(elem.oid)
        class_of_oid[elem.oid] = nid

    summary.root_id = class_of_oid[tree.root.oid]
    summary.doc_height = tree.height
    return summary


def expand_stable(summary: StableSummary) -> XMLTree:
    """``Expand`` (Lemma 3.1): rebuild a document isomorphic to the original.

    Works because every element of a class has identical child-class counts:
    starting from the root class (whose extent is the single document root),
    each class node expands to ``k`` copies of each child class's expansion.
    Children are emitted grouped by class; isomorphism is up to sibling
    order, which the data model does not constrain.
    """
    root = XMLNode(summary.label[summary.root_id])
    # Iterative expansion; stack entries are (class id, parent XMLNode).
    stack: List[Tuple[int, XMLNode]] = []

    def push_children(nid: int, node: XMLNode) -> None:
        for child_nid, k in summary.out.get(nid, {}).items():
            for _ in range(int(k)):
                stack.append((child_nid, node))

    push_children(summary.root_id, root)
    while stack:
        nid, parent = stack.pop()
        node = parent.new_child(summary.label[nid])
        push_children(nid, node)
    return XMLTree(root)


def is_count_stable(tree: XMLTree, assignment: Dict[int, int]) -> bool:
    """Check Definition 3.1 for an arbitrary element partitioning.

    ``assignment`` maps element oid -> class id.  Returns True iff every
    class pair is k-stable for some k (elements of a class all have the
    same per-class child counts) and the partitioning respects labels.
    """
    label_of_class: Dict[int, str] = {}
    signature_of_class: Dict[int, Tuple[Tuple[int, int], ...]] = {}
    for elem in tree:
        cid = assignment[elem.oid]
        if label_of_class.setdefault(cid, elem.label) != elem.label:
            return False
        counts = Counter(assignment[c.oid] for c in elem.children)
        signature = tuple(sorted(counts.items()))
        if signature_of_class.setdefault(cid, signature) != signature:
            return False
    return True
