"""TreeSketch: the paper's primary contribution.

This package implements Sections 3 and 4 of the paper:

* :mod:`repro.core.synopsis` -- the generic node-partitioning graph-synopsis
  model (Section 3.1).
* :mod:`repro.core.stable` -- count stability, the BUILD_STABLE algorithm
  (Fig. 4), and the ``Expand`` inverse of Lemma 3.1.
* :mod:`repro.core.treesketch` -- the TreeSketch synopsis (Definition 3.2)
  with per-edge sufficient statistics and the squared-error quality metric.
* :mod:`repro.core.build` / :mod:`repro.core.pool` -- the TSBUILD
  compression algorithm (Fig. 5) and CREATEPOOL candidate generation
  (Fig. 6).
* :mod:`repro.core.evaluate` -- EVALQUERY / EVALEMBED approximate query
  processing (Figs. 7-8).
* :mod:`repro.core.estimate` -- twig selectivity estimation over the result
  synopsis (Section 4.4).
* :mod:`repro.core.expand` -- expansion of a result synopsis into an
  approximate nesting tree.
* :mod:`repro.core.size` -- the synopsis storage-size model.
"""

from repro.core.stable import StableSummary, build_stable, expand_stable
from repro.core.maintain import StableMaintainer
from repro.core.io import save_synopsis, load_synopsis
from repro.core.treesketch import TreeSketch
from repro.core.build import TSBuildOptions, build_treesketch, compress_to_budgets
from repro.core.evaluate import ResultSketch, eval_query
from repro.core.estimate import estimate_selectivity
from repro.core.expand import expand_result
from repro.core.size import EDGE_BYTES, NODE_BYTES, synopsis_bytes

__all__ = [
    "StableSummary",
    "build_stable",
    "expand_stable",
    "StableMaintainer",
    "save_synopsis",
    "load_synopsis",
    "TreeSketch",
    "TSBuildOptions",
    "build_treesketch",
    "compress_to_budgets",
    "ResultSketch",
    "eval_query",
    "estimate_selectivity",
    "expand_result",
    "NODE_BYTES",
    "EDGE_BYTES",
    "synopsis_bytes",
]
