"""Fleet-level aggregation of per-worker metrics snapshots.

The sharded serving tier (:mod:`repro.serve.supervisor`) runs one
metrics registry *per worker process*; operators want one scrape target
for the whole fleet.  This module merges worker snapshots (the plain-dict
form of :meth:`repro.obs.metrics.MetricsRegistry.snapshot`) into a single
snapshot of the same shape, which the supervisor's exposition sidecar
renders exactly like a single process would.

Merge semantics, per instrument kind:

* **counters** -- summed.  ``serve.requests`` for the fleet is the sum of
  every worker's, which is what a rate() over the scrape expects.  Note
  the fleet total *resets per worker* when that worker restarts, like any
  process-lifetime counter.
* **gauges** -- summed.  The interesting serving gauges are occupancy
  style (``serve.queue.depth``), where the fleet-wide total is the
  meaningful number.
* **histograms** -- ``count``/``sum`` are summed exactly (so
  fleet-average latency is exact); ``min``/``max`` are the extrema over
  workers; quantiles are the **count-weighted upper envelope**: for each
  quantile key the merged value is the max over workers, an upper bound
  on the true fleet quantile (exact fleet percentiles would need the raw
  samples, which the wire format deliberately does not ship).  This is
  conservative in the direction operators care about -- an alert on p99
  can fire early, never late.

``fetch_snapshot`` pulls one worker's snapshot over its exposition
sidecar's ``/snapshotz`` endpoint (JSON; see :mod:`repro.obs.expo`).
"""

from __future__ import annotations

import json
import urllib.request
from typing import Dict, Iterable, List, Optional

__all__ = ["merge_snapshots", "fetch_snapshot"]

#: Quantile-ish summary keys merged by upper envelope (max over workers).
_ENVELOPE_KEYS = ("p50", "p90", "p95", "p99", "window_s")


def _merge_histogram(merged: Dict[str, float],
                     summary: Dict[str, float]) -> Dict[str, float]:
    count = merged.get("count", 0) + summary.get("count", 0)
    total = merged.get("sum", 0.0) + summary.get("sum", 0.0)
    out: Dict[str, float] = dict(merged)
    out["count"] = count
    out["sum"] = total
    out["mean"] = total / count if count else 0.0
    for key, pick in (("min", min), ("max", max)):
        values = [s[key] for s in (merged, summary)
                  if key in s and s.get("count", 0)]
        if values:
            out[key] = pick(values)
    for key in _ENVELOPE_KEYS:
        values = [s[key] for s in (merged, summary) if key in s]
        if values:
            out[key] = max(values)
    return out


def merge_snapshots(
    snapshots: Iterable[Optional[Dict[str, Dict[str, object]]]],
) -> Dict[str, Dict[str, object]]:
    """Merge worker registry snapshots into one fleet snapshot.

    ``None`` entries (a worker that is restarting or did not answer its
    scrape in time) are skipped -- the fleet view degrades to the live
    subset rather than failing the whole scrape.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snapshot.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, summary in (snapshot.get("histograms") or {}).items():
            histograms[name] = _merge_histogram(
                histograms.get(name, {}), summary)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def fetch_snapshot(host: str, port: int,
                   timeout: float = 2.0) -> Optional[Dict]:
    """One worker's registry snapshot via its ``/snapshotz`` endpoint.

    Returns ``None`` on any transport or decode failure: the caller is
    the fleet aggregator, for which a missing worker is a degraded view,
    not an error.
    """
    url = f"http://{host}:{port}/snapshotz"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except Exception:  # noqa: BLE001 - scrape failures degrade, not raise
        return None
