"""HTTP exposition of the observability layer: /metrics, /healthz, /statusz.

Scrapers (Prometheus, curl, dashboards) want the metrics registry over
HTTP, not in-process.  This module renders a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` in the Prometheus
text exposition format (version 0.0.4) and runs a tiny stdlib HTTP
sidecar serving three endpoints:

* ``GET /metrics``  -- the Prometheus text rendering of the snapshot;
* ``GET /healthz``  -- ``{"status": "ok"}`` while the process is up;
* ``GET /statusz``  -- a JSON status document supplied by the embedding
  server (the serving daemon publishes per-sketch registry stats,
  admission state, latency percentiles, and accuracy telemetry here --
  what ``treesketch top`` renders);
* ``GET /snapshotz`` -- the raw registry snapshot as JSON, the
  machine-readable twin of ``/metrics`` that the fleet aggregator
  (:mod:`repro.obs.fleet`) merges across worker processes.

The sidecar is deliberately a sidecar: it runs a
:class:`http.server.ThreadingHTTPServer` on its own daemon thread and
only ever *reads* snapshots, so a scrape can never block the serving
data plane.  No new dependencies -- stdlib only.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

__all__ = ["render_prometheus", "ExpositionServer"]

#: Quantiles published for each histogram in the exposition.
_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"), ("0.9", "p90"), ("0.95", "p95"), ("0.99", "p99"),
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, namespace: str = "treesketch") -> str:
    """Map a dotted registry name onto the Prometheus grammar.

    ``serve.requests.eval`` becomes ``treesketch_serve_requests_eval``:
    every character outside ``[a-zA-Z0-9_:]`` is replaced by ``_`` and
    the namespace prefix guarantees the first character is a letter.
    """
    return f"{namespace}_{_INVALID_CHARS.sub('_', name)}"


def _format_value(value: float) -> str:
    """One sample value in exposition syntax (NaN/+Inf/-Inf spelled out)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        return "NaN"
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Dict[str, Dict[str, object]],
                      namespace: str = "treesketch") -> str:
    """Render a registry snapshot as Prometheus text exposition (0.0.4).

    Counters gain the conventional ``_total`` suffix; histograms are
    published as ``summary`` metrics (``{quantile="..."}`` samples plus
    ``_sum``/``_count``), which matches what the bounded-sample and
    windowed histograms can answer exactly.  Output is sorted by metric
    name, ends in a newline, and every line parses under the exposition
    grammar -- ``tests/test_obs_expo.py`` holds a parser to that effect.
    """
    lines = []
    for name in sorted(snapshot.get("counters", {})):
        metric = sanitize_metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric} {_format_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        metric = sanitize_metric_name(name, namespace)
        summary = snapshot["histograms"][name]
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in _QUANTILES:
            if key in summary:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} '
                    f"{_format_value(summary[key])}")
        lines.append(f"{metric}_sum {_format_value(summary.get('sum', 0.0))}")
        lines.append(
            f"{metric}_count {_format_value(summary.get('count', 0))}")
    return "\n".join(lines) + "\n"


class ExpositionServer:
    """The HTTP metrics sidecar: stdlib, threaded, read-only.

    ``snapshot_provider`` returns the registry snapshot to render under
    ``/metrics``; ``status_provider`` (optional) returns the JSON
    document for ``/statusz``.  Both are called per request on the
    sidecar's threads, so they must be cheap and thread-safe --
    ``MetricsRegistry.snapshot()`` and the serving daemon's lock-free
    status readers both qualify.

    ``port=0`` binds an ephemeral port; read it back from :attr:`port`
    after :meth:`start`.
    """

    def __init__(self, snapshot_provider: Callable[[], Dict],
                 status_provider: Optional[Callable[[], Dict]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 namespace: str = "treesketch") -> None:
        self._snapshot_provider = snapshot_provider
        self._status_provider = status_provider
        self._namespace = namespace
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ---------------------------------------------------------------- routes

    def _make_handler(self):
        expo = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = render_prometheus(
                        expo._snapshot_provider(), namespace=expo._namespace
                    ).encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/healthz":
                    body = json.dumps({"status": "ok"}).encode("utf-8") + b"\n"
                    ctype = "application/json"
                elif path == "/statusz":
                    status = (expo._status_provider()
                              if expo._status_provider is not None else {})
                    body = json.dumps(status, sort_keys=True).encode("utf-8") \
                        + b"\n"
                    ctype = "application/json"
                elif path == "/snapshotz":
                    body = json.dumps(
                        expo._snapshot_provider(), sort_keys=True
                    ).encode("utf-8") + b"\n"
                    ctype = "application/json"
                else:
                    body = (b"not found: try /metrics, /healthz, /statusz, "
                            b"/snapshotz\n")
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # scrapes are periodic; don't spam the daemon's stderr

        return Handler

    # ------------------------------------------------------------- lifecycle

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "ExpositionServer":
        if self._thread is not None:
            raise RuntimeError("exposition server is already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-expo", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout)
        self._httpd.server_close()
        self._thread = None
