"""Error budgets for approximate answers: the accuracy ledger.

The paper's bargain is bounded-size synopses with *quantified* error;
operationally that means every served sketch should carry an explicit
error budget and the plane should say, at any moment, whether live
traffic is inside it.  :class:`AccuracyLedger` keeps, per sketch, a
target relative error and a trailing window of shadow-sampled observed
errors, and derives a **burn rate** (windowed mean error / target) and a
**budget state**:

``ok``
    burn rate below ``warn_ratio`` (default 0.8) of budget.
``warn``
    burn rate in ``[warn_ratio, 1.0]`` — approaching the budget.
``burning``
    windowed error exceeds the target: the sketch is out of budget.

The ledger is fed from the shadow sampler's drain thread
(:meth:`record`) and from the live maintainer's debt gauges
(:meth:`note_debt`), so all state transitions happen off the serving hot
path; a lock makes it safe to read from ``/statusz`` concurrently.

Exported metrics (all ``serve.accuracy.*``):

- ``budget_state.ok`` / ``.warn`` / ``.burning`` — gauges counting the
  sketches currently in each state.  One-hot-per-sketch counts survive
  the fleet merge (gauges are *summed* across workers), so the fleet
  snapshot reads as "N sketches burning fleet-wide".
- ``budget_burn_max`` — gauge, worst burn rate across tracked sketches.
- ``budget_transitions`` — counter, state changes (any direction).

Subscribers registered via :meth:`subscribe` receive
``(sketch, rel_error, state, burn_rate)`` after every recorded sample;
the serving tier uses this to feed measured drift back into the
maintainer's adaptive ``debt_threshold`` controller
(:mod:`repro.core.live`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs import get_metrics

__all__ = ["AccuracyLedger", "STATE_OK", "STATE_WARN", "STATE_BURNING"]

STATE_OK = "ok"
STATE_WARN = "warn"
STATE_BURNING = "burning"
_STATES = (STATE_OK, STATE_WARN, STATE_BURNING)


class _SketchBudget:
    __slots__ = ("target", "errors", "state", "debt", "samples")

    def __init__(self, target: float, window: int) -> None:
        self.target = float(target)
        self.errors: Deque[float] = deque(maxlen=window)
        self.state = STATE_OK
        self.debt = 0.0
        self.samples = 0

    def burn_rate(self) -> float:
        if not self.errors:
            return 0.0
        mean = sum(self.errors) / len(self.errors)
        return mean / self.target if self.target > 0 else float("inf")


class AccuracyLedger:
    """Per-sketch error budgets with trailing-window burn tracking."""

    def __init__(self, target_rel_error: float = 0.25, window: int = 64,
                 warn_ratio: float = 0.8) -> None:
        if target_rel_error <= 0:
            raise ValueError("target_rel_error must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < warn_ratio <= 1.0:
            raise ValueError("warn_ratio must be in (0, 1]")
        self.target_rel_error = float(target_rel_error)
        self.window = int(window)
        self.warn_ratio = float(warn_ratio)
        self._lock = threading.Lock()
        self._budgets: Dict[str, _SketchBudget] = {}
        self._listeners: List[Callable[[str, float, str, float], None]] = []
        # Plain-int mirror so /statusz reports even with obs disabled.
        self.transitions_total = 0

    # ------------------------------------------------------------- tracking

    def track(self, sketch: str, target: Optional[float] = None) -> None:
        """Register ``sketch`` (idempotent), optionally with its own target."""
        with self._lock:
            self._ensure(sketch, target)
        self._export()

    def _ensure(self, sketch: str, target: Optional[float] = None) -> _SketchBudget:
        budget = self._budgets.get(sketch)
        if budget is None:
            budget = _SketchBudget(
                target if target is not None else self.target_rel_error,
                self.window,
            )
            self._budgets[sketch] = budget
        elif target is not None:
            budget.target = float(target)
        return budget

    def subscribe(
        self, listener: Callable[[str, float, str, float], None]
    ) -> None:
        """Call ``listener(sketch, rel_error, state, burn_rate)`` after
        every recorded sample (on the recording thread)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------ recording

    def record(self, sketch: str, rel_error: float) -> str:
        """Fold one observed relative error into ``sketch``'s window.

        Returns the (possibly new) budget state.  Runs on the shadow
        drain thread, never the serving path.
        """
        with self._lock:
            budget = self._ensure(sketch)
            budget.errors.append(float(rel_error))
            budget.samples += 1
            burn = budget.burn_rate()
            if burn > 1.0:
                state = STATE_BURNING
            elif burn >= self.warn_ratio:
                state = STATE_WARN
            else:
                state = STATE_OK
            changed = state != budget.state
            budget.state = state
            if changed:
                self.transitions_total += 1
        if changed:
            get_metrics().counter("serve.accuracy.budget_transitions").inc()
        self._export()
        for listener in list(self._listeners):
            try:
                listener(sketch, float(rel_error), state, burn)
            except Exception:  # noqa: BLE001 - telemetry must not die
                pass
        return state

    def note_debt(self, sketch: str, debt: float) -> None:
        """Record the live maintainer's total error debt for ``sketch``."""
        with self._lock:
            self._ensure(sketch).debt = float(debt)

    # ------------------------------------------------------------ reporting

    def state(self, sketch: str) -> str:
        with self._lock:
            budget = self._budgets.get(sketch)
            return budget.state if budget is not None else STATE_OK

    def burn_rate(self, sketch: str) -> float:
        with self._lock:
            budget = self._budgets.get(sketch)
            return budget.burn_rate() if budget is not None else 0.0

    def summary(self) -> Dict[str, int]:
        """Count of tracked sketches per budget state."""
        counts = {s: 0 for s in _STATES}
        with self._lock:
            for budget in self._budgets.values():
                counts[budget.state] += 1
        return counts

    def info(self) -> Dict[str, Any]:
        """Per-sketch budget detail for ``/statusz`` and ``stats``."""
        sketches: Dict[str, Any] = {}
        with self._lock:
            for name, budget in sorted(self._budgets.items()):
                window = list(budget.errors)
                sketches[name] = {
                    "target": budget.target,
                    "state": budget.state,
                    "burn_rate": budget.burn_rate(),
                    "samples": budget.samples,
                    "window_n": len(window),
                    "window_mean": (
                        sum(window) / len(window) if window else None
                    ),
                    "debt": budget.debt,
                }
        return {
            "target_rel_error": self.target_rel_error,
            "window": self.window,
            "warn_ratio": self.warn_ratio,
            "transitions": self.transitions_total,
            "sketches": sketches,
        }

    def _export(self) -> None:
        metrics = get_metrics()
        counts = self.summary()
        for state in _STATES:
            metrics.gauge(f"serve.accuracy.budget_state.{state}").set(
                counts[state]
            )
        with self._lock:
            worst = max(
                (b.burn_rate() for b in self._budgets.values()), default=0.0
            )
        metrics.gauge("serve.accuracy.budget_burn_max").set(worst)
