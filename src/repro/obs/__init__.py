"""Observability for the TreeSketch hot paths: metrics, spans, traces.

The layer is **off by default**.  Instrumented code (TSBUILD, EVALQUERY,
the workload runner, the CLI) always talks to the *active* registry,
tracer, and clock through the accessors below; while disabled these are
shared no-op singletons, so the hot path pays one attribute lookup and an
empty method call -- no allocation, no branching.

Enabling installs real instruments::

    from repro import obs

    registry = obs.enable()                 # real clock, no trace file
    sketch = build_treesketch(tree, 20 * 1024)
    print(obs.report.render_registry(registry))
    obs.disable()

Tests prefer the scoped form with a fake clock, which makes every
duration deterministic::

    from repro.obs import FakeClock, ListSink

    clock, sink = FakeClock(), ListSink()
    with obs.observed(clock=clock, sink=sink) as registry:
        with obs.get_tracer().span("work"):
            clock.advance(1.5)
    assert sink.events[0]["duration"] == 1.5

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue, the span
hierarchy, and the trace-file schema.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs import report
from repro.obs.clock import FakeClock, MonotonicClock
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    WindowedHistogram,
)
from repro.obs.spans import (
    NULL_TRACER,
    JsonLinesSink,
    ListSink,
    NullSink,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    # state management
    "enable", "disable", "enabled", "observed",
    "get_metrics", "get_tracer", "get_clock",
    # building blocks
    "MetricsRegistry", "NullRegistry", "Counter", "Gauge", "Histogram",
    "WindowedHistogram",
    "Tracer", "NullTracer", "Span",
    "NullSink", "ListSink", "JsonLinesSink",
    "MonotonicClock", "FakeClock",
    "report",
]

_DEFAULT_CLOCK = MonotonicClock()

_metrics = NULL_REGISTRY
_tracer = NULL_TRACER
_clock = _DEFAULT_CLOCK


def get_metrics():
    """The active metrics registry (:data:`NULL_REGISTRY` when disabled)."""
    return _metrics


def get_tracer():
    """The active span tracer (:data:`NULL_TRACER` when disabled)."""
    return _tracer


def get_clock():
    """The active clock; a real monotonic clock even while disabled."""
    return _clock


def enabled() -> bool:
    return _metrics is not NULL_REGISTRY


def enable(registry: Optional[MetricsRegistry] = None, *,
           clock=None, sink=None) -> MetricsRegistry:
    """Install a live registry (and tracer/clock) as the active ones.

    Returns the registry so callers can snapshot it later.  Passing a
    ``sink`` routes finished spans there (e.g. a :class:`JsonLinesSink`);
    passing a ``clock`` (e.g. :class:`FakeClock`) makes every timing
    deterministic.
    """
    global _metrics, _tracer, _clock
    _metrics = registry if registry is not None else MetricsRegistry()
    _clock = clock if clock is not None else _DEFAULT_CLOCK
    _tracer = Tracer(clock=_clock, sink=sink, metrics=_metrics)
    return _metrics


def disable() -> None:
    """Return to the no-op defaults (the initial state)."""
    global _metrics, _tracer, _clock
    _metrics = NULL_REGISTRY
    _tracer = NULL_TRACER
    _clock = _DEFAULT_CLOCK


@contextmanager
def observed(registry: Optional[MetricsRegistry] = None, *,
             clock=None, sink=None) -> Iterator[MetricsRegistry]:
    """Scoped :func:`enable`: restores the previous state on exit."""
    global _metrics, _tracer, _clock
    previous = (_metrics, _tracer, _clock)
    installed = enable(registry, clock=clock, sink=sink)
    try:
        yield installed
    finally:
        _metrics, _tracer, _clock = previous
