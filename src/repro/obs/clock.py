"""Pluggable clocks for the observability layer.

Everything in :mod:`repro.obs` that measures time goes through a clock
object with a single ``now() -> float`` method returning seconds.  The
production clock wraps :func:`time.perf_counter` (monotonic, high
resolution -- wall-clock ``time.time()`` can jump backwards under NTP
adjustment and must not feed latency numbers).  Tests inject a
:class:`FakeClock` and advance it explicitly, which makes span durations
and latency histograms fully deterministic.
"""

from __future__ import annotations

import time


class MonotonicClock:
    """The production clock: monotonic seconds via ``time.perf_counter``."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class FakeClock:
    """A manually advanced clock for deterministic tests.

    ``now()`` returns the current reading without side effects; time moves
    only through :meth:`advance` (relative) or :meth:`set` (absolute).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks do not run backwards")
        self._now += seconds

    def set(self, seconds: float) -> None:
        if seconds < self._now:
            raise ValueError("clocks do not run backwards")
        self._now = float(seconds)
