"""Rendering metrics snapshots: text tables and flat dicts.

``render_snapshot`` produces the fixed-width table the CLI prints under
``--stats``; ``flatten_snapshot`` turns the same snapshot into a flat
``{"counters.tsbuild.merges_applied": 412, ...}`` mapping so benchmark
harnesses can merge internal counters into their JSON trajectories next
to wall-clock numbers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_HIST_COLUMNS: Tuple[str, ...] = ("count", "mean", "p50", "p90", "p99", "max")


def render_snapshot(snapshot: Dict[str, Dict[str, object]],
                    title: str = "observability summary") -> str:
    """Fixed-width tables for counters, gauges, and histograms."""
    # Deferred import: repro.experiments pulls in the instrumented core
    # modules, which import repro.obs -- importing it at module scope
    # would close that cycle during package initialization.
    from repro.experiments.reporting import format_table

    sections: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        sections.append(format_table(
            "counters",
            ["name", "value"],
            [(name, value) for name, value in sorted(counters.items())],
        ))
    gauges = snapshot.get("gauges", {})
    if gauges:
        sections.append(format_table(
            "gauges",
            ["name", "value"],
            [(name, value) for name, value in sorted(gauges.items())],
        ))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name, summary in sorted(histograms.items()):
            rows.append([name] + [summary[c] for c in _HIST_COLUMNS])
        sections.append(format_table(
            "histograms", ["name", *_HIST_COLUMNS], rows,
        ))
    if not sections:
        return f"{title}\n\n(no metrics recorded)"
    return f"{title}\n\n" + "\n\n".join(sections)


def render_registry(registry, title: str = "observability summary") -> str:
    """Convenience: render a registry's current snapshot."""
    return render_snapshot(registry.snapshot(), title=title)


def flatten_snapshot(snapshot: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """Flatten to dotted scalar keys for inclusion in benchmark JSON."""
    flat: Dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[f"counters.{name}"] = value
    for name, value in snapshot.get("gauges", {}).items():
        flat[f"gauges.{name}"] = value
    for name, summary in snapshot.get("histograms", {}).items():
        for column, value in summary.items():
            flat[f"histograms.{name}.{column}"] = value
    return flat
