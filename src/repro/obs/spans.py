"""Hierarchical span timers and structured trace sinks.

A *span* measures one named region of execution.  Spans nest: the tracer
keeps a stack of active spans, and every finished span knows its slash-
joined path (``tsbuild.compress_to/eval.query``) and depth.  Finished
spans become trace *events* -- plain dicts -- handed to a sink:

* :class:`NullSink` drops them (the default);
* :class:`ListSink` accumulates them in memory (tests);
* :class:`JsonLinesSink` appends one JSON object per line to a file
  (the CLI's ``--trace FILE``).

Durations come from the tracer's pluggable clock (see
:mod:`repro.obs.clock`); each finished span is also recorded into the
tracer's metrics registry as a ``span.<name>.seconds`` histogram, so a
trace file is optional -- the summary table alone answers "where did the
time go?".

The disabled path uses :data:`NULL_TRACER`, whose ``span()`` returns a
shared reentrant no-op context manager: no event dict, no clock reads.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Dict, List, Optional, Union

from repro.obs.clock import MonotonicClock
from repro.obs.metrics import NULL_REGISTRY

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NullSink",
    "ListSink",
    "JsonLinesSink",
]


class NullSink:
    """Discards every event."""

    __slots__ = ()

    def emit(self, event: Dict[str, object]) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Accumulates events in memory, in emission order."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Writes one compact JSON object per line (the trace-file format).

    Crash-safe by default: every record is flushed to the OS as one
    complete line (``flush_every=1``), so a process killed mid-run loses
    at most the event being serialized -- never a torn half-line that
    breaks downstream ``jq``/ingest.  Long batch runs can trade that for
    throughput with ``flush_every=N`` (bounded buffering: at most ``N-1``
    records are lost on a crash).  ``emit`` is thread-safe -- the serving
    daemon records spans from the event loop *and* its worker pool --
    and a closed sink drops events instead of raising, so late span
    exits during shutdown cannot crash the host.  Usable as a context
    manager.
    """

    def __init__(self, target: Union[str, IO[str]],
                 flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._handle = target
            self._owned = False
        self._flush_every = flush_every
        self._unflushed = 0
        self._lock = threading.Lock()
        self._closed = False
        self.events_written = 0

    def emit(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._closed:
                return
            self._handle.write(line)
            self._handle.write("\n")
            self.events_written += 1
            self._unflushed += 1
            if self._unflushed >= self._flush_every:
                self._handle.flush()
                self._unflushed = 0

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
            finally:
                if self._owned:
                    self._handle.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Span:
    """One active region; yielded by :meth:`Tracer.span`.

    ``annotate`` attaches attributes that land on the emitted event --
    useful for values only known at exit (result sizes, merge counts).
    """

    __slots__ = ("name", "path", "depth", "start", "attrs")

    def __init__(self, name: str, path: str, depth: int, start: float,
                 attrs: Optional[Dict[str, object]]) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.start = start
        self.attrs = attrs

    def annotate(self, **attrs: object) -> None:
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)


class _ActiveSpan:
    """Context manager binding one Span to its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self._span, error=exc_type is not None)


class Tracer:
    """Measures named spans against a clock and reports them.

    Every finished span (1) becomes a trace event on ``sink`` and
    (2) observes its duration into ``metrics`` as the histogram
    ``span.<name>.seconds``.  Spans opened while another span is active
    nest under it; nesting is tracked per tracer (single-threaded, like
    the rest of the layer).
    """

    def __init__(self, clock=None, sink=None, metrics=None) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.sink = sink if sink is not None else NullSink()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._stack: List[str] = []

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        self._stack.append(name)
        span = Span(
            name=name,
            path="/".join(self._stack),
            depth=len(self._stack) - 1,
            start=self.clock.now(),
            attrs=attrs or None,
        )
        return _ActiveSpan(self, span)

    def current_path(self) -> str:
        """Slash-joined path of the active span stack ('' at top level)."""
        return "/".join(self._stack)

    def record(self, name: str, start: float, duration: float,
               **attrs: object) -> None:
        """Emit a pre-timed, flat span event without touching the stack.

        The context-manager form assumes single-threaded, properly nested
        execution; async servers interleave many requests on one event
        loop (and finish compute on worker threads), which would corrupt
        the nesting stack.  ``record`` is the safe form for those
        callers: the caller times the region itself and the event goes
        out at depth 0 -- correlation happens through attributes (the
        serving daemon stamps every request's spans with its
        ``request_id``), not through nesting.
        """
        event: Dict[str, object] = {
            "type": "span",
            "name": name,
            "path": name,
            "depth": 0,
            "start": start,
            "duration": duration,
        }
        if attrs:
            event["attrs"] = attrs
        self.sink.emit(event)
        self.metrics.histogram(f"span.{name}.seconds").observe(duration)

    def _finish(self, span: Span, error: bool) -> None:
        duration = self.clock.now() - span.start
        self._stack.pop()
        event: Dict[str, object] = {
            "type": "span",
            "name": span.name,
            "path": span.path,
            "depth": span.depth,
            "start": span.start,
            "duration": duration,
        }
        if span.attrs:
            event["attrs"] = span.attrs
        if error:
            event["error"] = True
        self.sink.emit(event)
        self.metrics.histogram(f"span.{span.name}.seconds").observe(duration)


class _NullActiveSpan:
    """Shared reentrant no-op: __enter__ hands out a shared inert Span."""

    __slots__ = ()

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    # Span-compatible surface, so `with tracer.span(...) as sp` code works
    # identically whether tracing is enabled or not.
    name = "<null>"
    path = ""
    depth = 0
    start = 0.0
    attrs: Optional[Dict[str, object]] = None

    def annotate(self, **attrs: object) -> None:
        pass


_NULL_ACTIVE_SPAN = _NullActiveSpan()


class NullTracer:
    """The disabled-path tracer: no clock reads, no events, no nesting."""

    clock = MonotonicClock()
    sink = NullSink()
    metrics = NULL_REGISTRY

    def span(self, name: str, **attrs: object) -> _NullActiveSpan:
        return _NULL_ACTIVE_SPAN

    def record(self, name: str, start: float, duration: float,
               **attrs: object) -> None:
        pass

    def current_path(self) -> str:
        return ""


NULL_TRACER = NullTracer()
