"""A lightweight, dependency-free metrics registry.

Four instrument kinds, mirroring the usual server-metrics vocabulary:

* :class:`Counter` -- a monotonically increasing integer (merges applied,
  heap pops, cache hits);
* :class:`Gauge` -- a float that can move both ways (current synopsis
  size, heap depth);
* :class:`Histogram` -- a streaming distribution with exact count/sum/
  min/max and quantiles over a bounded, deterministically thinned sample
  (per-query latencies, span durations);
* :class:`WindowedHistogram` -- a ring of fixed-duration buckets on the
  obs clock, reporting quantiles over the trailing window only (the
  serving daemon's ``serve.op.latency.*`` percentiles, where a dashboard
  wants "the last minute", not "since process start").

Instrumented code never checks an "is observability on?" flag.  It asks
the active registry for an instrument and calls ``inc``/``set``/
``observe``; when observability is disabled (the default) the active
registry is the :data:`NULL_REGISTRY`, which hands back shared no-op
singletons -- no allocation, no branching, just an empty method call on
the hot path.

The registry is intentionally not thread-safe: the reproduction's hot
paths are single-threaded, and uncontended ``int`` bumps are the whole
point of the design.  Wrap a registry in your own lock if you shard work
across threads.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedHistogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A float metric that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A streaming distribution with deterministic bounded sampling.

    ``count``/``total``/``min``/``max`` are exact over every observation.
    Quantiles come from a retained sample capped at ``sample_cap`` values:
    when the sample fills up it is thinned to every second element and the
    retention stride doubles, so long runs keep an evenly spaced subset.
    The thinning depends only on the observation sequence -- identical
    runs yield identical quantiles, which the deterministic test harness
    relies on.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_sample", "_cap", "_stride", "_pending")

    def __init__(self, name: str, sample_cap: int = 4096) -> None:
        if sample_cap < 2:
            raise ValueError("sample_cap must be at least 2")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sample: List[float] = []
        self._cap = sample_cap
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._sample.append(value)
            if len(self._sample) >= self._cap:
                self._sample = self._sample[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Sample quantile by nearest-rank; 0.0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class WindowedHistogram:
    """Quantiles over a trailing time window, not process lifetime.

    Observations land in a ring of ``buckets`` fixed-duration buckets of
    ``window_s / buckets`` seconds each, stamped with the obs clock; a
    bucket older than the window is dropped the next time the histogram
    is touched.  ``summary()``/``quantile()`` therefore describe only the
    trailing window -- the shape a live dashboard wants -- while
    ``count``/``total`` stay exact over every observation ever made.
    Quantiles are exact (no thinning): a window holds at most a few
    seconds of traffic, so the retained sample stays small by design.

    The clock is resolved through :func:`repro.obs.get_clock` at call
    time unless one is injected, so a :class:`~repro.obs.clock.FakeClock`
    installed via ``obs.observed(clock=...)`` drives rotation
    deterministically in tests.
    """

    __slots__ = ("name", "count", "total", "window_s", "bucket_s",
                 "num_buckets", "_clock", "_buckets")

    def __init__(self, name: str, window_s: float = 60.0, buckets: int = 6,
                 clock=None) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.window_s = float(window_s)
        self.num_buckets = int(buckets)
        self.bucket_s = self.window_s / self.num_buckets
        self._clock = clock
        # (bucket index on the clock, observations) pairs, oldest first.
        self._buckets: Deque[Tuple[int, List[float]]] = deque()

    def _now_index(self) -> int:
        clock = self._clock
        if clock is None:
            from repro.obs import get_clock

            clock = get_clock()
        return int(clock.now() / self.bucket_s)

    def _rotate(self, now_index: int) -> None:
        horizon = now_index - self.num_buckets
        while self._buckets and self._buckets[0][0] <= horizon:
            self._buckets.popleft()

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        index = self._now_index()
        self._rotate(index)
        if not self._buckets or self._buckets[-1][0] != index:
            self._buckets.append((index, []))
        self._buckets[-1][1].append(value)

    def window_values(self) -> List[float]:
        """Every observation still inside the trailing window."""
        self._rotate(self._now_index())
        values: List[float] = []
        for _, bucket in self._buckets:
            values.extend(bucket)
        return values

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the window; 0.0 when it is empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        values = sorted(self.window_values())
        if not values:
            return 0.0
        return values[min(len(values) - 1, int(q * len(values)))]

    def summary(self) -> Dict[str, float]:
        values = sorted(self.window_values())
        n = len(values)

        def rank(q: float) -> float:
            return values[min(n - 1, int(q * n))] if n else 0.0

        return {
            "count": n,
            "sum": sum(values),
            "mean": sum(values) / n if n else 0.0,
            "min": values[0] if n else 0.0,
            "max": values[-1] if n else 0.0,
            "p50": rank(0.50),
            "p90": rank(0.90),
            "p95": rank(0.95),
            "p99": rank(0.99),
            "window_s": self.window_s,
        }


class MetricsRegistry:
    """Names -> instruments; instruments are created on first use.

    A name is bound to exactly one instrument kind for the registry's
    lifetime; asking for the same name with a different kind raises, so a
    typo can't silently split one logical metric in two.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[
            str, Union[Counter, Gauge, Histogram, WindowedHistogram]
        ] = {}

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def windowed(self, name: str, window_s: float = 60.0,
                 buckets: int = 6) -> WindowedHistogram:
        """A :class:`WindowedHistogram`; window params apply on creation."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = WindowedHistogram(name, window_s=window_s, buckets=buckets)
            self._metrics[name] = metric
        elif type(metric) is not WindowedHistogram:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                "not a WindowedHistogram"
            )
        return metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict view of every instrument, safe to serialize."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


class _NullCounter:
    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<null>"
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                "max": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled-path registry: every lookup is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def windowed(self, name: str, window_s: float = 60.0,
                 buckets: int = 6) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def names(self) -> List[str]:
        return []

    def reset(self) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()
