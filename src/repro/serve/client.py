"""A small blocking client for the serving daemon.

Deliberately dependency-free and synchronous: tests, the workload replay
mode (``treesketch workload --server``), and scripts want a
one-socket-one-call interface, not an async stack.  One
:class:`ServeClient` wraps one TCP connection; requests are written as
newline-delimited JSON and responses matched by ``id`` (the client is
sequential, so ids are only a sanity check).

Failures come back two ways: :meth:`request` returns the raw response
dict (including ``ok: false`` errors -- what load-test and degradation
probes want), while the typed convenience methods (:meth:`eval`,
:meth:`estimate`, ...) raise :class:`ServerError` carrying the structured
error code.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve import protocol


class ServerError(RuntimeError):
    """An ``ok: false`` response, surfaced with its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``HOST:PORT`` string (the CLI's ``--server`` argument)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


class ServeClient:
    """Blocking line-protocol client; usable as a context manager.

    ``retries``/``backoff`` make the initial *connection* resilient to a
    daemon that is still starting (deploy races, test harnesses): each
    refused attempt sleeps ``backoff * 2**attempt`` seconds plus up to
    ``jitter`` of that again (decorrelated, so a fleet of restarting
    clients does not reconnect in lockstep), up to ``retries`` extra
    attempts.  The default is zero retries -- fail fast, as before.

    Every response's correlation id is kept in :attr:`last_request_id`
    (server-generated unless the caller passed ``request_id=``), ready
    to grep out of the server's trace file.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retries: int = 0, backoff: float = 0.05,
                 jitter: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0 or jitter < 0:
            raise ValueError("backoff and jitter must be >= 0")
        self.host = host
        self.port = port
        self.last_request_id: Optional[str] = None
        rng = rng if rng is not None else random.Random()
        for attempt in range(retries + 1):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout)
                break
            except OSError:
                if attempt >= retries:
                    raise
                delay = backoff * (2 ** attempt)
                time.sleep(delay * (1.0 + jitter * rng.random()))
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------ transport

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, return the raw response dict (even errors)."""
        self._next_id += 1
        message: Dict[str, Any] = {"op": op, "id": self._next_id}
        message.update({k: v for k, v in fields.items() if v is not None})
        self._file.write(protocol.encode_message(message))
        self._file.flush()
        line = self._file.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # The server caps responses at MAX_LINE_BYTES (oversized ones
            # become response_too_large errors), so a missing terminator
            # means the stream is desynchronized, not a long answer.
            raise ConnectionError(
                "response line exceeds the protocol cap; stream is "
                "desynchronized -- reconnect"
            )
        response = protocol.decode_message(line)
        if response.get("id") not in (None, self._next_id):
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        self.last_request_id = response.get("request_id")
        return response

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request`, but raise :class:`ServerError` on failure."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(error.get("code", "internal"),
                              error.get("message", "unspecified server error"))
        return response

    # ---------------------------------------------------------- convenience

    def eval(self, query: str, sketch: Optional[str] = None,
             deadline_ms: Optional[float] = None,
             request_id: Optional[str] = None) -> Dict[str, Any]:
        """Full approximate answer: selectivity, result summary, bindings.

        Under server pressure the response may be ``degraded: true`` and
        carry only a cached selectivity -- callers must treat ``result``
        / ``bindings`` as optional, and uncached queries may come back
        ``overloaded`` (raised as :class:`ServerError`) until pressure
        drops.
        """
        return self.call("eval", query=query, sketch=sketch,
                         deadline_ms=deadline_ms, request_id=request_id)

    def estimate(self, query: str, sketch: Optional[str] = None,
                 deadline_ms: Optional[float] = None,
                 request_id: Optional[str] = None) -> float:
        """Selectivity estimate for ``query`` (the cheap path)."""
        return self.call("estimate", query=query, sketch=sketch,
                         deadline_ms=deadline_ms,
                         request_id=request_id)["selectivity"]

    def expand(self, query: str, sketch: Optional[str] = None,
               max_nodes: Optional[int] = None, seed: Optional[int] = None,
               deadline_ms: Optional[float] = None,
               request_id: Optional[str] = None) -> Dict[str, Any]:
        """Approximate answer document: ``{"elements": n, "xml": ...}``."""
        return self.call("expand", query=query, sketch=sketch,
                         max_nodes=max_nodes, seed=seed,
                         deadline_ms=deadline_ms, request_id=request_id)

    def health(self) -> Dict[str, Any]:
        return self.call("health")

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def list_sketches(self) -> List[Dict[str, Any]]:
        return self.call("list_sketches")["sketches"]

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
