"""A small blocking client for the serving daemon.

Deliberately dependency-free and synchronous: tests, the workload replay
mode (``treesketch workload --server``), and scripts want a
one-socket-one-call interface, not an async stack.  One
:class:`ServeClient` wraps one TCP connection; requests are written as
newline-delimited JSON and responses matched by ``id`` (the client is
sequential, so ids are only a sanity check).

Failures come back two ways: :meth:`request` returns the raw response
dict (including ``ok: false`` errors -- what load-test and degradation
probes want), while the typed convenience methods (:meth:`eval`,
:meth:`estimate`, ...) raise :class:`ServerError` carrying the structured
error code.

For the sharded tier (:mod:`repro.serve.supervisor`) there is
:class:`PooledClient`: it bootstraps a shard map from the supervisor's
control endpoint, keeps one lazily-opened :class:`ServeClient` per
worker, routes each request to the worker that owns the target sketch
(recomputing the consistent-hash assignment locally -- see
:mod:`repro.serve.sharding`), and on a broken connection *re-resolves*
the shard map before reconnecting, so a worker that was restarted on a
new port is found again instead of hammered at its old address.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serve import protocol, sharding


class ServerError(RuntimeError):
    """An ``ok: false`` response, surfaced with its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class UnknownSketchError(ServerError):
    """The requested sketch name is not served (wire code ``unknown_sketch``).

    Raised by :meth:`ServeClient.call` when a worker rejects the name,
    and by :meth:`PooledClient._route` when the name is absent from the
    fleet shard map (after one refresh, in case the map was stale) --
    the pool must not consistent-hash an unknown name onto an arbitrary
    worker and surface that worker's shard-local error instead of the
    fleet-wide picture.  ``sketch`` carries the offending name.
    """

    def __init__(self, message: str, sketch: Optional[str] = None) -> None:
        super().__init__("unknown_sketch", message)
        self.sketch = sketch


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``HOST:PORT`` string (the CLI's ``--server`` argument)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


class ServeClient:
    """Blocking line-protocol client; usable as a context manager.

    ``retries``/``backoff`` make the initial *connection* resilient to a
    daemon that is still starting (deploy races, test harnesses): each
    refused attempt sleeps ``backoff * 2**attempt`` seconds plus up to
    ``jitter`` of that again (decorrelated, so a fleet of restarting
    clients does not reconnect in lockstep), up to ``retries`` extra
    attempts.  The default is zero retries -- fail fast, as before.

    Every response's correlation id is kept in :attr:`last_request_id`
    (server-generated unless the caller passed ``request_id=``), ready
    to grep out of the server's trace file.

    ``resolver`` (optional) is called before *every* connection attempt
    -- initial and :meth:`reconnect` alike -- and returns the
    ``(host, port)`` to dial.  A fixed address was the old behaviour and
    remains the default; a resolver lets pooled clients re-resolve the
    shard map on reconnect, which matters because a restarted worker
    generally comes back on a different ephemeral port.  A resolver that
    raises :class:`OSError` (e.g. "that worker is still restarting")
    participates in the same retry/backoff loop as a refused connection.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retries: int = 0, backoff: float = 0.05,
                 jitter: float = 0.5,
                 rng: Optional[random.Random] = None,
                 resolver: Optional[Callable[[], Tuple[str, int]]] = None,
                 ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0 or jitter < 0:
            raise ValueError("backoff and jitter must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.resolver = resolver
        self.last_request_id: Optional[str] = None
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()
        self._next_id = 0

    def _connect(self) -> None:
        for attempt in range(self.retries + 1):
            try:
                if self.resolver is not None:
                    self.host, self.port = self.resolver()
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
                break
            except OSError:
                if attempt >= self.retries:
                    raise
                delay = self.backoff * (2 ** attempt)
                time.sleep(delay * (1.0 + self.jitter * self._rng.random()))
        self._file = self._sock.makefile("rwb")

    def reconnect(self) -> None:
        """Drop the connection and dial again (through the resolver)."""
        self.close()
        self._connect()

    # ------------------------------------------------------------ transport

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, return the raw response dict (even errors)."""
        self._next_id += 1
        message: Dict[str, Any] = {"op": op, "id": self._next_id}
        message.update({k: v for k, v in fields.items() if v is not None})
        self._file.write(protocol.encode_message(message))
        self._file.flush()
        line = self._file.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # The server caps responses at MAX_LINE_BYTES (oversized ones
            # become response_too_large errors), so a missing terminator
            # means the stream is desynchronized, not a long answer.
            raise ConnectionError(
                "response line exceeds the protocol cap; stream is "
                "desynchronized -- reconnect"
            )
        response = protocol.decode_message(line)
        if response.get("id") not in (None, self._next_id):
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        self.last_request_id = response.get("request_id")
        return response

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request`, but raise :class:`ServerError` on failure.

        An ``unknown_sketch`` rejection comes back as the narrower
        :class:`UnknownSketchError`, so callers can tell a misnamed
        sketch (fix the request) from a genuine server fault.
        """
        response = self.request(op, **fields)
        if not response.get("ok"):
            error = response.get("error") or {}
            code = error.get("code", "internal")
            message = error.get("message", "unspecified server error")
            if code == "unknown_sketch":
                raise UnknownSketchError(message,
                                         sketch=fields.get("sketch"))
            raise ServerError(code, message)
        return response

    # ---------------------------------------------------------- convenience

    def eval(self, query: str, sketch: Optional[str] = None,
             deadline_ms: Optional[float] = None,
             request_id: Optional[str] = None) -> Dict[str, Any]:
        """Full approximate answer: selectivity, result summary, bindings.

        Under server pressure the response may be ``degraded: true`` and
        carry only a cached selectivity -- callers must treat ``result``
        / ``bindings`` as optional, and uncached queries may come back
        ``overloaded`` (raised as :class:`ServerError`) until pressure
        drops.
        """
        return self.call("eval", query=query, sketch=sketch,
                         deadline_ms=deadline_ms, request_id=request_id)

    def estimate(self, query: str, sketch: Optional[str] = None,
                 deadline_ms: Optional[float] = None,
                 request_id: Optional[str] = None) -> float:
        """Selectivity estimate for ``query`` (the cheap path)."""
        return self.call("estimate", query=query, sketch=sketch,
                         deadline_ms=deadline_ms,
                         request_id=request_id)["selectivity"]

    def expand(self, query: str, sketch: Optional[str] = None,
               max_nodes: Optional[int] = None, seed: Optional[int] = None,
               deadline_ms: Optional[float] = None,
               request_id: Optional[str] = None) -> Dict[str, Any]:
        """Approximate answer document: ``{"elements": n, "xml": ...}``."""
        return self.call("expand", query=query, sketch=sketch,
                         max_nodes=max_nodes, seed=seed,
                         deadline_ms=deadline_ms, request_id=request_id)

    def explain(self, query: str, sketch: Optional[str] = None,
                top_k: Optional[int] = None,
                deadline_ms: Optional[float] = None,
                request_id: Optional[str] = None) -> Dict[str, Any]:
        """Error provenance for one estimate: per-cluster contribution
        terms (summing exactly to ``estimate``), the top-``top_k``
        error-contributing clusters, and -- when the daemon runs with an
        error budget -- the sketch's budget state and burn rate."""
        return self.call("explain", query=query, sketch=sketch,
                         top_k=top_k, deadline_ms=deadline_ms,
                         request_id=request_id)

    def update(self, action: str, sketch: Optional[str] = None,
               parent_label: Optional[str] = None,
               parent_ordinal: Optional[int] = None,
               subtree: Optional[object] = None,
               label: Optional[str] = None, ordinal: Optional[int] = None,
               deadline_ms: Optional[float] = None,
               request_id: Optional[str] = None) -> Dict[str, Any]:
        """Mutate a live sketch (``insert_subtree`` / ``delete_subtree``).

        Returns the post-mutation payload (``epoch``, ``debt``,
        ``remerges``, sizes).  **Not idempotent**: a transport failure
        after the request was written leaves the mutation's fate unknown
        -- callers must check the sketch's ``epoch`` (``list_sketches``)
        before resending, never blind-retry.
        """
        return self.call("update", sketch=sketch, action=action,
                         parent_label=parent_label,
                         parent_ordinal=parent_ordinal, subtree=subtree,
                         label=label, ordinal=ordinal,
                         deadline_ms=deadline_ms, request_id=request_id)

    def health(self) -> Dict[str, Any]:
        return self.call("health")

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def list_sketches(self) -> List[Dict[str, Any]]:
        return self.call("list_sketches")["sketches"]

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PooledClient:
    """Shard-map-aware connection pool over a supervised worker fleet.

    ``host``/``port`` address the **supervisor control endpoint** (the
    ``treesketch serve --workers N`` readiness line prints it); the pool
    fetches the shard map from there, then opens one data connection per
    worker on demand.  Routing:

    * ``shard_by="name"``: the owning worker index is recomputed locally
      with the same consistent-hash ring the supervisor used
      (:func:`repro.serve.sharding.shard_for`), so routing costs no
      round-trip.  The property tests pin client/supervisor agreement.
    * ``shard_by="none"``: requests round-robin across workers (under
      ``SO_REUSEPORT`` every worker shares one port, so each pooled
      connection still lands on some worker and the kernel balances).

    Failure handling is the part that earns the pool its keep: a request
    that dies mid-flight (worker SIGKILLed, connection reset) surfaces as
    ``ConnectionError``/``OSError`` -- never a hang, the protocol is
    strictly request/response with a socket timeout -- and the pool drops
    the dead connection, **re-fetches the shard map**, and retries
    against the worker's new incarnation with exponential backoff.
    Retried ops must be idempotent; every *read* op is (the sketches are
    frozen), so :meth:`call` retries all of them.  The one mutation op
    goes through :meth:`update` instead, which routes identically but
    never retries -- resending a subtree edit whose first attempt may
    have applied would double-apply it.

    Thread-safe: the shard map and connection table are lock-guarded and
    each worker connection is serialized by a per-worker lock.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retries: int = 8, backoff: float = 0.05,
                 jitter: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._conns: Dict[int, ServeClient] = {}
        self._conn_locks: Dict[int, threading.Lock] = {}
        self._map: Optional[Dict[str, Any]] = None
        self._rr = 0
        self._control = ServeClient(host, port, timeout=timeout,
                                    retries=retries, backoff=backoff,
                                    jitter=jitter, rng=self._rng)
        self.refresh()

    # ------------------------------------------------------------ shard map

    def refresh(self) -> Dict[str, Any]:
        """Re-fetch the shard map from the supervisor control endpoint."""
        try:
            response = self._control.call("shard_map")
        except (ConnectionError, OSError):
            self._control.reconnect()
            response = self._control.call("shard_map")
        with self._lock:
            self._map = response
        return response

    @property
    def shard_map(self) -> Dict[str, Any]:
        with self._lock:
            if self._map is None:
                raise RuntimeError("pool has no shard map yet")
            return self._map

    def shard_for(self, sketch: str) -> int:
        """The worker index that owns ``sketch`` (computed client-side)."""
        shard_map = self.shard_map
        return sharding.shard_for(sketch, shard_map["shard_count"])

    def _route(self, sketch: Optional[str]) -> int:
        shard_map = self.shard_map
        if shard_map["shard_by"] == "name":
            if sketch is None:
                names = shard_map["sketches"]
                if len(names) != 1:
                    raise ValueError(
                        "a sharded fleet serves multiple sketches; pass "
                        f"sketch= (one of {names})")
                sketch = names[0]
            elif sketch not in shard_map["sketches"]:
                # Don't hash an unknown name onto an arbitrary worker:
                # that worker would answer with its shard-local sketch
                # list, which is misleading.  Re-fetch the map once in
                # case it predates a fleet re-spec, then fail with the
                # fleet-wide picture.
                try:
                    shard_map = self.refresh()
                except (ConnectionError, OSError):
                    pass
                if sketch not in shard_map["sketches"]:
                    raise UnknownSketchError(
                        f"sketch {sketch!r} is not served by this fleet; "
                        f"available: {sorted(shard_map['sketches'])}",
                        sketch=sketch)
            return sharding.shard_for(sketch, shard_map["shard_count"])
        with self._lock:
            up = [w["index"] for w in shard_map["workers"]
                  if w["state"] == "up"]
            candidates = up or [w["index"] for w in shard_map["workers"]]
            self._rr += 1
            return candidates[self._rr % len(candidates)]

    def _resolve_worker(self, index: int) -> Tuple[str, int]:
        """Resolver for one worker's data connection: re-read the map.

        Called by the per-worker :class:`ServeClient` before every dial,
        so a reconnect always chases the worker's *current* address --
        the fix for retry loops pinned to a dead ephemeral port.
        """
        info = self.refresh()["workers"][index]
        if info["state"] != "up" or info["port"] is None:
            raise ConnectionError(
                f"worker {index} is {info['state']}; retrying")
        return info["host"], info["port"]

    # ----------------------------------------------------------- connections

    def _conn(self, index: int) -> Tuple[ServeClient, threading.Lock]:
        with self._lock:
            client = self._conns.get(index)
            lock = self._conn_locks.setdefault(index, threading.Lock())
        if client is None:
            client = ServeClient(
                "", 0, timeout=self.timeout, retries=self.retries,
                backoff=self.backoff, jitter=self.jitter, rng=self._rng,
                resolver=lambda index=index: self._resolve_worker(index))
            with self._lock:
                self._conns[index] = client
        return client, lock

    def _drop(self, index: int) -> None:
        with self._lock:
            client = self._conns.pop(index, None)
        if client is not None:
            client.close()

    # --------------------------------------------------------------- requests

    def call(self, op: str, sketch: Optional[str] = None,
             **fields: Any) -> Dict[str, Any]:
        """Route one op to its worker; retry through restarts.

        :class:`ServerError` (an application-level ``ok: false``) is
        raised through untouched; only transport failures trigger the
        drop/re-resolve/retry cycle.
        """
        last_exc: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            index = self._route(sketch)
            try:
                client, lock = self._conn(index)
                with lock:
                    return client.call(op, sketch=sketch, **fields)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self._drop(index)
                if attempt >= self.retries:
                    raise
                delay = self.backoff * (2 ** attempt)
                time.sleep(delay * (1.0 + self.jitter * self._rng.random()))
                try:
                    self.refresh()
                except (ConnectionError, OSError):
                    pass  # supervisor briefly unreachable; keep retrying
        raise last_exc  # pragma: no cover - loop always returns or raises

    # ---------------------------------------------------------- convenience

    def eval(self, query: str, sketch: Optional[str] = None,
             **fields: Any) -> Dict[str, Any]:
        return self.call("eval", sketch=sketch, query=query, **fields)

    def estimate(self, query: str, sketch: Optional[str] = None,
                 **fields: Any) -> float:
        return self.call("estimate", sketch=sketch, query=query,
                         **fields)["selectivity"]

    def expand(self, query: str, sketch: Optional[str] = None,
               **fields: Any) -> Dict[str, Any]:
        return self.call("expand", sketch=sketch, query=query, **fields)

    def explain(self, query: str, sketch: Optional[str] = None,
                **fields: Any) -> Dict[str, Any]:
        return self.call("explain", sketch=sketch, query=query, **fields)

    def update(self, action: str, sketch: Optional[str] = None,
               **fields: Any) -> Dict[str, Any]:
        """Route one mutation to the owning worker -- exactly once.

        Uses the same shard-map routing as :meth:`call` but deliberately
        NOT its retry loop: ``update`` is not idempotent, and a transport
        failure mid-flight leaves the mutation's fate unknown.  On such a
        failure the dead connection is dropped (so the next call
        re-resolves the worker) and the error propagates; the caller
        decides whether to re-check the epoch and resend.
        """
        index = self._route(sketch)
        try:
            client, lock = self._conn(index)
            with lock:
                return client.update(action, sketch=sketch, **fields)
        except (ConnectionError, OSError):
            self._drop(index)
            try:
                self.refresh()
            except (ConnectionError, OSError):
                pass  # supervisor briefly unreachable; map refresh is advisory
            raise

    def health(self) -> Dict[str, Any]:
        """Fleet health, answered by the supervisor control endpoint."""
        return self._control.call("health")

    def fleet_stats(self) -> Dict[str, Any]:
        return self._control.call("fleet_stats")

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for client in conns:
            client.close()
        self._control.close()

    def __enter__(self) -> "PooledClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
