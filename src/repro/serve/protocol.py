"""Wire protocol for the TreeSketch query-serving daemon.

One request per line, one response per line: UTF-8 JSON objects separated
by ``\\n`` (newline-delimited JSON).  A connection is a sequence of
independent request/response pairs -- there is no session state beyond
the TCP stream, so clients may pipeline requests and match responses by
``id``.

Request shape::

    {"op": "eval", "id": 7, "sketch": "xmark", "query": "//a (//p)",
     "deadline_ms": 250}

``op`` is required; everything else depends on the op (see
docs/SERVING.md for the full spec).  ``request_id`` is the optional
end-to-end correlation id: the server generates one when it is absent,
echoes it in every response, and stamps it on the request's server-side
trace spans.  Responses always carry ``ok`` plus the echoed
``id``/``op``/``request_id``; failures carry a structured ``error``::

    {"id": 7, "ok": false, "op": "eval",
     "error": {"code": "overloaded", "message": "queue full (64 pending)"}}

This module is transport-agnostic: it validates and (de)serializes
messages, and both :mod:`repro.serve.server` and
:mod:`repro.serve.client` build on it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple, Union

PROTOCOL_VERSION = 1

#: Supported operations, in documentation order.  ``shard_map`` and
#: ``fleet_stats`` are answered by the supervisor's control endpoint
#: (:mod:`repro.serve.supervisor`); a worker addressed directly answers
#: them with ``unknown_op`` pointing at the supervisor.
OPS = ("eval", "estimate", "explain", "expand", "update", "list_sketches",
       "health", "stats", "shard_map", "fleet_stats")

#: Ops that read a sketch (admission-controlled; the rest are control-plane).
DATA_OPS = frozenset({"eval", "estimate", "explain", "expand"})

#: Ops that mutate a sketch.  Admission-controlled like data ops, but
#: never coalesced, never shadow-sampled, and **not idempotent** --
#: clients must not blind-retry them (see PooledClient.update).
MUTATION_OPS = frozenset({"update"})

#: Mutation actions an ``update`` request may carry.
UPDATE_ACTIONS = ("insert_subtree", "delete_subtree")

#: Ops only the supervisor control endpoint serves.
SUPERVISOR_OPS = frozenset({"shard_map", "fleet_stats"})

#: Structured error codes a response may carry.
ERROR_CODES = (
    "bad_request",        # malformed JSON, wrong types, missing fields
    "unknown_op",         # op not in OPS
    "unknown_sketch",     # sketch name not in the registry
    "immutable_sketch",   # update against a frozen (non-live) sketch
    "bad_query",          # twig text failed to parse
    "deadline_exceeded",  # request ran past its (or the server's) deadline
    "overloaded",         # shed by admission control; retry with backoff
    "expansion_limit",    # expand exceeded max_nodes
    "response_too_large",  # serialized response exceeded MAX_LINE_BYTES
    "internal",           # unexpected server-side failure
)

#: Hard cap on one serialized message (requests *and* responses).
MAX_LINE_BYTES = 1 << 20

#: Cap on a client-supplied correlation id (it is echoed and logged).
MAX_REQUEST_ID_CHARS = 128


class ProtocolError(Exception):
    """A request that cannot be served, tagged with a wire error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


def _require_str(request: Dict[str, Any], field: str) -> str:
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            "bad_request", f"field {field!r} must be a non-empty string"
        )
    return value


def _check_ordinal(request: Dict[str, Any], field: str) -> None:
    value = request.get(field)
    if value is not None and (
        not isinstance(value, int) or isinstance(value, bool) or value < 0
    ):
        raise ProtocolError(
            "bad_request", f"field {field!r} must be a non-negative integer"
        )


def _check_subtree(spec: Any, depth: int = 0) -> None:
    """Validate a wire subtree spec: a label string, or ``[label, [specs]]``.

    The nested-list form mirrors ``XMLTree.from_nested`` so a validated
    spec feeds the maintainer directly, no conversion step.
    """
    if depth > 64:
        raise ProtocolError("bad_request", "field 'subtree' nests too deeply")
    if isinstance(spec, str):
        if not spec:
            raise ProtocolError(
                "bad_request", "subtree labels must be non-empty strings")
        return
    if not isinstance(spec, list) or len(spec) != 2 \
            or not isinstance(spec[0], str) or not spec[0] \
            or not isinstance(spec[1], list):
        raise ProtocolError(
            "bad_request",
            "field 'subtree' must be a label string or a "
            "[label, [child, ...]] pair",
        )
    for child in spec[1]:
        _check_subtree(child, depth + 1)


def parse_request(line: Union[bytes, str]) -> Dict[str, Any]:
    """Decode and validate one request line.

    Returns the request dict; raises :class:`ProtocolError` with
    ``bad_request`` (malformed JSON / bad field types) or ``unknown_op``.
    Op-specific required fields are checked here so the server's dispatch
    can assume a well-formed request.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("bad_request", "request exceeds MAX_LINE_BYTES")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("bad_request", "request is not valid UTF-8")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_request", f"request is not valid JSON: {exc}")
    if not isinstance(request, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")

    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad_request", "field 'op' must be a string")
    if op not in OPS:
        raise ProtocolError(
            "unknown_op", f"unknown op {op!r}; supported: {', '.join(OPS)}"
        )

    req_id = request.get("id")
    if req_id is not None and not isinstance(req_id, (int, str)):
        raise ProtocolError("bad_request", "field 'id' must be an int or string")

    request_id = request.get("request_id")
    if request_id is not None:
        if not isinstance(request_id, str) or not request_id:
            raise ProtocolError(
                "bad_request", "field 'request_id' must be a non-empty string"
            )
        if len(request_id) > MAX_REQUEST_ID_CHARS:
            raise ProtocolError(
                "bad_request",
                f"field 'request_id' exceeds {MAX_REQUEST_ID_CHARS} characters",
            )

    deadline = request.get("deadline_ms")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool) \
                or deadline <= 0:
            raise ProtocolError(
                "bad_request", "field 'deadline_ms' must be a positive number"
            )

    if op in DATA_OPS:
        _require_str(request, "query")
        if request.get("sketch") is not None:
            _require_str(request, "sketch")
    if op == "update":
        if request.get("sketch") is not None:
            _require_str(request, "sketch")
        action = _require_str(request, "action")
        if action not in UPDATE_ACTIONS:
            raise ProtocolError(
                "bad_request",
                f"unknown update action {action!r}; "
                f"supported: {', '.join(UPDATE_ACTIONS)}",
            )
        if action == "insert_subtree":
            _require_str(request, "parent_label")
            _check_ordinal(request, "parent_ordinal")
            if "subtree" not in request:
                raise ProtocolError(
                    "bad_request", "insert_subtree requires field 'subtree'")
            _check_subtree(request["subtree"])
        else:  # delete_subtree
            _require_str(request, "label")
            _check_ordinal(request, "ordinal")
    if op == "explain":
        top_k = request.get("top_k")
        if top_k is not None and (
            not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1
        ):
            raise ProtocolError(
                "bad_request", "field 'top_k' must be a positive integer"
            )
    if op == "expand":
        max_nodes = request.get("max_nodes")
        if max_nodes is not None and (
            not isinstance(max_nodes, int) or isinstance(max_nodes, bool)
            or max_nodes < 1
        ):
            raise ProtocolError(
                "bad_request", "field 'max_nodes' must be a positive integer"
            )
        seed = request.get("seed")
        if seed is not None and (
            not isinstance(seed, int) or isinstance(seed, bool)
        ):
            raise ProtocolError("bad_request", "field 'seed' must be an integer")
    return request


def ok_response(request: Optional[Dict[str, Any]], **payload: Any) -> Dict[str, Any]:
    """A success response echoing the request's ``id``, ``op``, ``request_id``."""
    request = request or {}
    response: Dict[str, Any] = {"id": request.get("id"), "op": request.get("op"),
                                "ok": True}
    if request.get("request_id") is not None:
        response["request_id"] = request["request_id"]
    response.update(payload)
    return response


def error_response(
    request: Optional[Dict[str, Any]], code: str, message: str
) -> Dict[str, Any]:
    """A failure response with a structured ``error`` object."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    request = request or {}
    response: Dict[str, Any] = {
        "id": request.get("id"),
        "op": request.get("op"),
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request.get("request_id") is not None:
        response["request_id"] = request["request_id"]
    return response


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its newline-terminated wire form."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def encode_response(message: Dict[str, Any]) -> Tuple[bytes, Dict[str, Any]]:
    """Serialize a response, enforcing :data:`MAX_LINE_BYTES`.

    Clients frame responses with a 1 MiB ``readline`` -- an oversized
    line would reach them truncated and desynchronize the stream.  A
    response that serializes past the cap is therefore replaced by a
    structured ``response_too_large`` error (echoing the original
    ``id``/``op``), which always fits.  Returns ``(wire bytes, the
    message actually encoded)`` so callers can meter errors correctly.
    """
    data = encode_message(message)
    if len(data) > MAX_LINE_BYTES:
        message = error_response(
            message, "response_too_large",
            f"serialized response is {len(data)} bytes, over the "
            f"{MAX_LINE_BYTES}-byte line cap; for expand, lower max_nodes",
        )
        data = encode_message(message)
    return data, message


def decode_message(line: Union[bytes, str]) -> Dict[str, Any]:
    """Parse one response line (client side); raises ValueError if broken."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("response must be a JSON object")
    return message
