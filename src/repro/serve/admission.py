"""Admission control for the serving daemon: bound, shed, degrade.

An inference-style server must never let a burst of expensive requests
take down the cheap ones, so data-plane requests pass through a single
:class:`AdmissionController` with two thresholds:

* ``max_pending`` -- the hard concurrency bound.  A request arriving
  while ``max_pending`` requests are already admitted is **shed**: the
  server answers immediately with a structured ``overloaded`` error
  (clients retry with backoff) instead of queueing unboundedly.
* ``degrade_watermark`` -- the soft pressure threshold.  While the
  admitted depth is above it, ``eval`` requests are answered
  **degraded**: from the query cache only (an already-cached
  selectivity, flagged ``degraded: true``; a cache miss is answered
  ``overloaded``), so degradation genuinely sheds evaluation work
  instead of merely shrinking the response.

Depth is published through the obs gauge ``serve.queue.depth``, set
while the lock is still held so concurrent transitions can never leave
a stale depth behind; admissions and sheds bump ``serve.admitted`` /
``serve.shed``.  The controller is thread-safe by necessity:
``acquire()`` runs on the server's event-loop thread, but ``release()``
also fires from worker-pool done-callbacks (the slot travels with the
computation so admission bounds real in-flight compute).
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Optional

from repro.obs import get_metrics


class Decision(enum.Enum):
    """Outcome of an admission attempt."""

    ADMIT = "admit"      # serve normally
    DEGRADE = "degrade"  # serve, but eval answers selectivity-only
    SHED = "shed"        # reject with an `overloaded` error


class AdmissionController:
    """Bounded admission gate with a degradation watermark.

    ``max_pending`` must be >= 1 (a server that sheds everything is
    configured, not overloaded).  ``degrade_watermark=None`` defaults to
    half of ``max_pending``; ``0`` degrades every admitted eval (useful
    for tests and for forcing estimate-only service).
    """

    def __init__(self, max_pending: int = 64,
                 degrade_watermark: Optional[int] = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if degrade_watermark is None:
            degrade_watermark = max(1, max_pending // 2)
        if degrade_watermark < 0:
            raise ValueError("degrade_watermark must be >= 0")
        self.max_pending = max_pending
        self.degrade_watermark = degrade_watermark
        self._pending = 0
        self._lock = threading.Lock()
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def depth(self) -> int:
        """Number of currently admitted (pending) data-plane requests."""
        return self._pending

    def acquire(self) -> Decision:
        """Try to admit one request; pair every non-SHED with a release."""
        metrics = get_metrics()
        with self._lock:
            if self._pending >= self.max_pending:
                self.shed_total += 1
                metrics.counter("serve.shed").inc()
                return Decision.SHED
            self._pending += 1
            depth = self._pending
            self.admitted_total += 1
            metrics.gauge("serve.queue.depth").set(depth)
        metrics.counter("serve.admitted").inc()
        if depth > self.degrade_watermark:
            return Decision.DEGRADE
        return Decision.ADMIT

    def release(self) -> None:
        """Return one admitted slot."""
        with self._lock:
            if self._pending <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._pending -= 1
            get_metrics().gauge("serve.queue.depth").set(self._pending)

    def info(self) -> Dict[str, int]:
        """Current depth, limits, and lifetime totals (for the stats op)."""
        return {
            "depth": self._pending,
            "max_pending": self.max_pending,
            "degrade_watermark": self.degrade_watermark,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
        }
