"""Deterministic shard routing for the multi-process serving tier.

The supervisor (:mod:`repro.serve.supervisor`), every worker process, and
every pooled client must agree on which worker owns which sketch --
*without* talking to each other, because a worker that just restarted has
to recompute its shard from nothing but its index.  The assignment is
therefore a pure function of ``(sketch name, worker count)`` built on a
consistent-hash ring over SHA-1 digests:

* **deterministic across processes and runs** -- SHA-1, never Python's
  salted ``hash()``, so two interpreters (or the same one tomorrow)
  produce identical maps;
* **total and unambiguous** -- every name maps to exactly one worker
  index in ``range(shard_count)``;
* **stable under resharding** -- growing the fleet from N to N+1 workers
  moves only ~1/(N+1) of the names (the classic consistent-hashing
  property), so a rolling resize does not invalidate every client-side
  route at once.

``shard_for`` is the one routing primitive; ``assign`` maps a whole
registry at once (what ``shard_map`` responses carry).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["DEFAULT_REPLICAS", "HashRing", "shard_for", "assign",
           "shard_names"]

#: Virtual nodes per worker on the ring.  128 keeps the expected load
#: imbalance for a handful of workers under a few percent while the ring
#: stays tiny (shard_count * 128 entries, built once).
DEFAULT_REPLICAS = 128


def _digest(key: str) -> int:
    """A 64-bit integer position on the ring for ``key`` (SHA-1 prefix)."""
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over worker indices ``0..shard_count-1``.

    The ring is immutable once built; building it for the same
    ``(shard_count, replicas)`` always yields the same ring, which is the
    whole point.
    """

    def __init__(self, shard_count: int,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_count = shard_count
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for index in range(shard_count):
            for vnode in range(replicas):
                points.append((_digest(f"worker-{index}:{vnode}"), index))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [o for _, o in points]

    def owner(self, name: str) -> int:
        """The worker index owning ``name`` (first vnode clockwise)."""
        if not name:
            raise ValueError("sketch name must be non-empty")
        at = bisect.bisect_right(self._positions, _digest(name))
        if at == len(self._positions):
            at = 0  # wrap: past the last vnode lands on the first
        return self._owners[at]


def shard_for(name: str, shard_count: int,
              replicas: int = DEFAULT_REPLICAS) -> int:
    """The worker index that owns sketch ``name`` in a fleet of
    ``shard_count`` workers.  Pure and deterministic -- safe to call from
    the supervisor, a worker, and a client and expect agreement."""
    return HashRing(shard_count, replicas=replicas).owner(name)


def assign(names: Iterable[str], shard_count: int,
           replicas: int = DEFAULT_REPLICAS) -> Dict[str, int]:
    """Map every sketch name to its owning worker index, ring built once."""
    ring = HashRing(shard_count, replicas=replicas)
    return {name: ring.owner(name) for name in names}


def shard_names(names: Sequence[str], index: int, shard_count: int,
                replicas: int = DEFAULT_REPLICAS) -> List[str]:
    """The subset of ``names`` owned by worker ``index`` (load-time filter)."""
    if not 0 <= index < shard_count:
        raise ValueError(
            f"index {index} out of range for shard_count {shard_count}")
    ring = HashRing(shard_count, replicas=replicas)
    return [name for name in names if ring.owner(name) == index]
