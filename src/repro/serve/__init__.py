"""Network query serving for TreeSketch synopses.

The paper's promise is *build once, answer in a fraction of a second*;
this package is the "answer" half as a network daemon: an asyncio TCP
server speaking a newline-delimited JSON protocol over a registry of
pinned sketches, with per-request deadlines, bounded admission with load
shedding, and graceful degradation to selectivity-only answers under
queue pressure.  See docs/SERVING.md for the protocol specification and
operational semantics; start it from the command line with
``treesketch serve`` (or ``python -m repro serve``).
"""

from repro.serve.admission import AdmissionController, Decision
from repro.serve.client import ServeClient, ServerError, parse_address
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.serve.registry import RegisteredSketch, SketchRegistry
from repro.serve.server import (
    ServeConfig,
    ServerHandle,
    SketchServer,
    start_server_thread,
)
from repro.serve.shadow import ShadowSampler, load_reference

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ERROR_CODES",
    "ProtocolError",
    "AdmissionController",
    "Decision",
    "SketchRegistry",
    "RegisteredSketch",
    "ServeConfig",
    "SketchServer",
    "ServerHandle",
    "start_server_thread",
    "ServeClient",
    "ServerError",
    "parse_address",
    "ShadowSampler",
    "load_reference",
]
