"""Network query serving for TreeSketch synopses.

The paper's promise is *build once, answer in a fraction of a second*;
this package is the "answer" half as a network daemon: an asyncio TCP
server speaking a newline-delimited JSON protocol over a registry of
pinned sketches, with per-request deadlines, bounded admission with load
shedding, and graceful degradation to selectivity-only answers under
queue pressure.  See docs/SERVING.md for the protocol specification and
operational semantics; start it from the command line with
``treesketch serve`` (or ``python -m repro serve``).

Scale-out lives here too: :mod:`repro.serve.supervisor` forks a sharded
multi-process worker fleet (consistent hashing over sketch names,
crash-restart with capped backoff, aggregated fleet telemetry), and
:class:`~repro.serve.client.PooledClient` is the matching shard-map-aware
client pool.  ``treesketch serve --workers N`` starts the fleet.
"""

from repro.serve.admission import AdmissionController, Decision
from repro.serve.client import (
    PooledClient,
    ServeClient,
    ServerError,
    UnknownSketchError,
    parse_address,
)
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    SUPERVISOR_OPS,
    ProtocolError,
)
from repro.serve.registry import RegisteredSketch, SketchRegistry, parse_spec
from repro.serve.server import (
    ServeConfig,
    ServerHandle,
    SketchServer,
    start_server_thread,
)
from repro.serve.shadow import ShadowSampler, load_reference
from repro.serve.sharding import HashRing, assign, shard_for, shard_names
from repro.serve.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ERROR_CODES",
    "ProtocolError",
    "AdmissionController",
    "Decision",
    "SketchRegistry",
    "RegisteredSketch",
    "ServeConfig",
    "SketchServer",
    "ServerHandle",
    "start_server_thread",
    "ServeClient",
    "PooledClient",
    "ServerError",
    "UnknownSketchError",
    "parse_address",
    "parse_spec",
    "SUPERVISOR_OPS",
    "HashRing",
    "assign",
    "shard_for",
    "shard_names",
    "Supervisor",
    "SupervisorConfig",
    "ShadowSampler",
    "load_reference",
]
