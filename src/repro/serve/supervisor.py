"""The sharded multi-process serving tier: supervisor + worker fleet.

One asyncio daemon saturates one core; "heavy traffic from millions of
users" needs a process fleet.  :class:`Supervisor` forks N serving
workers -- each a full ``python -m repro serve`` subprocess, so a worker
is exactly the hardened single-process daemon (admission, deadlines,
degradation, coalescing, telemetry) -- and takes on everything fleet:

* **Sharding.**  ``shard_by="name"`` (the default) assigns each sketch
  to exactly one worker via the consistent-hash ring of
  :mod:`repro.serve.sharding`; a worker loads only its shard, so memory
  scales out with the fleet.  ``shard_by="none"`` loads every sketch in
  every worker and binds them all to ONE shared data port with
  ``SO_REUSEPORT``, letting the kernel balance connections (falls back
  to per-worker ports when the platform lacks ``SO_REUSEPORT``).
* **Supervision.**  A monitor thread restarts crashed workers with
  capped exponential backoff (``backoff_base_s * 2**consecutive_failures``
  up to ``backoff_cap_s``; the failure streak resets after
  ``backoff_reset_s`` of healthy uptime).  Every (re)start bumps the
  shard-map version so clients know to re-resolve.
* **A control endpoint.**  The supervisor answers ``health``,
  ``shard_map`` and ``fleet_stats`` over the same NDJSON line protocol
  the workers speak (:mod:`repro.serve.protocol`); pooled clients
  (:class:`repro.serve.client.PooledClient`) bootstrap and re-resolve
  their routing from ``shard_map``.
* **Fleet telemetry.**  ``metrics_port`` starts an exposition sidecar
  whose ``/metrics`` is the merge of every worker's registry snapshot
  (:mod:`repro.obs.fleet`) -- one scrape target for the whole fleet.
* **Drain.**  ``stop()`` SIGTERMs the fleet and waits: each worker runs
  its own graceful drain (the PR-4 machinery), so fleet shutdown loses
  no in-flight work that a single process would have kept.

Determinism note: supervisor, workers, and clients never exchange the
assignment -- each recomputes it from ``(sketch names, worker count)``
(see :mod:`repro.serve.sharding`), and ``tests/test_serve_sharding.py``
pins cross-process agreement.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import socketserver
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import get_metrics
from repro.obs.fleet import fetch_snapshot, merge_snapshots
from repro.serve import protocol, sharding
from repro.serve.protocol import ProtocolError
from repro.serve.registry import parse_spec

__all__ = ["SupervisorConfig", "Supervisor", "WorkerState"]

#: Readiness lines printed by ``treesketch serve`` (the worker CLI).
_SERVE_RE = re.compile(r"on (\d+\.\d+\.\d+\.\d+):(\d+) \(protocol")
_TELEMETRY_RE = re.compile(r"telemetry on http://([\d.]+):(\d+)")


@dataclass
class SupervisorConfig:
    """Tunables for one :class:`Supervisor`.

    ``port`` is the *control* endpoint (shard_map / fleet_stats /
    health); data traffic goes to the workers.  ``worker_port`` only
    matters for ``shard_by="none"``: the shared ``SO_REUSEPORT`` data
    port (0 = reserve an ephemeral one).  ``worker_args`` is forwarded
    verbatim to every worker's ``treesketch serve`` argv -- deadline,
    admission, cache and coalescing flags all pass through.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    shard_by: str = "name"  # "name" | "none"
    worker_port: int = 0
    metrics_port: Optional[int] = None
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0
    backoff_reset_s: float = 10.0
    spawn_timeout_s: float = 30.0
    drain_s: float = 5.0
    worker_args: Tuple[str, ...] = ()
    python: Optional[str] = None  # interpreter for workers (tests override)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shard_by not in ("name", "none"):
            raise ValueError(
                f"shard_by must be 'name' or 'none', got {self.shard_by!r}")


class WorkerState:
    """One worker slot: the live process plus its supervision history."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Optional[subprocess.Popen] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.metrics_host: Optional[str] = None
        self.metrics_port: Optional[int] = None
        self.sketches: List[str] = []
        self.state = "starting"  # starting | up | backoff | stopped
        self.restarts = 0
        self.consecutive_failures = 0
        self.last_backoff_s = 0.0
        self.restart_due: Optional[float] = None
        self.started_at: Optional[float] = None
        self.ready = threading.Event()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def info(self) -> Dict[str, Any]:
        now = time.monotonic()
        return {
            "index": self.index,
            "pid": self.pid,
            "host": self.host,
            "port": self.port,
            "metrics_host": self.metrics_host,
            "metrics_port": self.metrics_port,
            "sketches": list(self.sketches),
            "state": self.state,
            "restarts": self.restarts,
            "last_backoff_s": self.last_backoff_s,
            "uptime_s": (now - self.started_at
                         if self.state == "up" and self.started_at is not None
                         else 0.0),
        }


class Supervisor:
    """Forks, shards, restarts, aggregates, and drains a worker fleet."""

    def __init__(self, specs: List[str],
                 config: Optional[SupervisorConfig] = None) -> None:
        self.specs = list(specs)
        self.config = config or SupervisorConfig()
        parsed = [parse_spec(spec) for spec in self.specs]
        self.sketch_names = [name for name, _ in parsed]
        if len(set(self.sketch_names)) != len(self.sketch_names):
            raise ValueError(f"duplicate sketch names in {self.sketch_names}")
        self._lock = threading.RLock()
        self._workers = [WorkerState(i) for i in range(self.config.workers)]
        self._version = 0
        self._started_at: Optional[float] = None
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._control: Optional[socketserver.ThreadingTCPServer] = None
        self._control_thread: Optional[threading.Thread] = None
        self._exposition = None
        self._reuseport_sock: Optional[socket.socket] = None
        self._shared_data_port: Optional[int] = None
        self.restarts_total = 0

    # ------------------------------------------------------------ addressing

    @property
    def control_address(self) -> Tuple[str, int]:
        if self._control is None:
            raise RuntimeError("supervisor is not started")
        return self._control.server_address[:2]

    @property
    def metrics_address(self) -> Tuple[str, int]:
        if self._exposition is None:
            raise RuntimeError("fleet metrics sidecar is not running")
        return self._exposition.host, self._exposition.port

    def assignment(self) -> Dict[str, int]:
        """Sketch name -> owning worker index (whole fleet for share-all)."""
        if self.config.shard_by == "name":
            return sharding.assign(self.sketch_names, self.config.workers)
        return {}

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "Supervisor":
        if self._started_at is not None:
            raise RuntimeError("supervisor is already started")
        self._started_at = time.monotonic()
        if self.config.shard_by == "none":
            self._reserve_shared_port()
        for worker in self._workers:
            self._spawn(worker)
        deadline = time.monotonic() + self.config.spawn_timeout_s
        for worker in self._workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not worker.ready.wait(remaining):
                self.stop(drain=False)
                raise RuntimeError(
                    f"worker {worker.index} did not report readiness within "
                    f"{self.config.spawn_timeout_s:g}s")
        self._start_control()
        if self.config.metrics_port is not None:
            from repro.obs.expo import ExpositionServer

            self._exposition = ExpositionServer(
                snapshot_provider=self.fleet_snapshot,
                status_provider=self.fleet_statusz,
                host=self.config.host,
                port=self.config.metrics_port,
            ).start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-supervisor", daemon=True)
        self._monitor.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """SIGTERM the fleet and wait for it to drain; returns cleanliness.

        Each worker runs its own graceful drain on SIGTERM (up to its
        ``--drain-s``), so the fleet-wide drain budget defaults to
        ``drain_s`` plus a scheduling margin.  Workers still alive after
        the budget are SIGKILLed (and the drain reported unclean).
        """
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(5.0)
            self._monitor = None
        budget = timeout if timeout is not None else self.config.drain_s + 5.0
        clean = True
        with self._lock:
            live = [w for w in self._workers if w.proc is not None
                    and w.proc.poll() is None]
            for worker in live:
                try:
                    worker.proc.send_signal(
                        signal.SIGTERM if drain else signal.SIGKILL)
                except OSError:
                    pass
        deadline = time.monotonic() + budget
        for worker in live:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                worker.proc.wait(remaining)
            except subprocess.TimeoutExpired:
                clean = False
                worker.proc.kill()
                worker.proc.wait(5.0)
            worker.state = "stopped"
        if self._control is not None:
            self._control.shutdown()
            self._control.server_close()
            if self._control_thread is not None:
                self._control_thread.join(5.0)
            self._control = None
            self._control_thread = None
        if self._exposition is not None:
            self._exposition.stop()
            self._exposition = None
        if self._reuseport_sock is not None:
            self._reuseport_sock.close()
            self._reuseport_sock = None
        return clean

    # ------------------------------------------------------------- spawning

    def _reserve_shared_port(self) -> None:
        """Hold the share-all data port open (bound, never listening).

        Workers bind the same port with ``SO_REUSEPORT`` and *listen*;
        the kernel only balances across listening sockets, so this one
        merely pins the port number for the supervisor's lifetime.
        """
        if not hasattr(socket, "SO_REUSEPORT"):
            self._shared_data_port = None  # per-worker ports; pool balances
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.worker_port))
        self._reuseport_sock = sock
        self._shared_data_port = sock.getsockname()[1]

    def _worker_argv(self, worker: WorkerState) -> List[str]:
        python = self.config.python or sys.executable
        argv = [python, "-m", "repro", "serve", *self.specs,
                "--host", self.config.host,
                "--metrics-port", "0",
                "--shard-index", str(worker.index),
                "--shard-count", str(self.config.workers),
                "--shard-by", self.config.shard_by,
                "--drain-s", str(self.config.drain_s)]
        if self.config.shard_by == "none" and self._shared_data_port:
            argv += ["--port", str(self._shared_data_port), "--reuse-port"]
        else:
            argv += ["--port", "0"]
        argv += list(self.config.worker_args)
        return argv

    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # `-m repro` must resolve in the child even when the supervisor
        # itself was imported off a path not exported to the environment.
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _spawn(self, worker: WorkerState) -> None:
        with self._lock:
            worker.state = "starting"
            worker.ready.clear()
            worker.host = worker.port = None
            worker.metrics_host = worker.metrics_port = None
            if self.config.shard_by == "name":
                worker.sketches = sharding.shard_names(
                    self.sketch_names, worker.index, self.config.workers)
            else:
                worker.sketches = list(self.sketch_names)
            worker.proc = subprocess.Popen(
                self._worker_argv(worker),
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=self._worker_env())
        reader = threading.Thread(
            target=self._read_worker_output, args=(worker, worker.proc),
            name=f"repro-worker-{worker.index}-out", daemon=True)
        reader.start()

    def _read_worker_output(self, worker: WorkerState,
                            proc: subprocess.Popen) -> None:
        """Parse readiness lines, then keep forwarding the worker's log."""
        for line in proc.stdout:
            match = _SERVE_RE.search(line)
            if match:
                with self._lock:
                    worker.host = match.group(1)
                    worker.port = int(match.group(2))
            match = _TELEMETRY_RE.search(line)
            if match:
                with self._lock:
                    worker.metrics_host = match.group(1)
                    worker.metrics_port = int(match.group(2))
            with self._lock:
                if (worker.state == "starting" and worker.port is not None
                        and worker.metrics_port is not None):
                    worker.state = "up"
                    worker.started_at = time.monotonic()
                    self._version += 1
                    get_metrics().gauge("fleet.workers.up").set(
                        sum(1 for w in self._workers if w.state == "up"))
                    worker.ready.set()
            print(f"[worker {worker.index}] {line.rstrip()}", flush=True)
        proc.stdout.close()

    # ------------------------------------------------------------ monitoring

    def _monitor_loop(self) -> None:
        """Detect worker deaths; restart with capped exponential backoff."""
        while not self._stopping.wait(0.05):
            now = time.monotonic()
            with self._lock:
                for worker in self._workers:
                    if worker.state in ("starting", "up"):
                        if worker.proc is not None \
                                and worker.proc.poll() is not None:
                            self._on_worker_death(worker, now)
                    elif worker.state == "backoff":
                        if worker.restart_due is not None \
                                and now >= worker.restart_due:
                            worker.restart_due = None
                            worker.restarts += 1
                            self.restarts_total += 1
                            get_metrics().counter("fleet.restarts").inc()
                            self._spawn(worker)

    def _on_worker_death(self, worker: WorkerState, now: float) -> None:
        returncode = worker.proc.returncode
        uptime = (now - worker.started_at
                  if worker.started_at is not None else 0.0)
        if uptime >= self.config.backoff_reset_s:
            worker.consecutive_failures = 0
        backoff = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** worker.consecutive_failures))
        worker.consecutive_failures += 1
        worker.last_backoff_s = backoff
        worker.state = "backoff"
        worker.restart_due = now + backoff
        self._version += 1
        metrics = get_metrics()
        metrics.counter("fleet.worker_exits").inc()
        metrics.gauge("fleet.workers.up").set(
            sum(1 for w in self._workers if w.state == "up"))
        print(f"[supervisor] worker {worker.index} "
              f"(pid {worker.pid}) exited with {returncode} after "
              f"{uptime:.2f}s; restarting in {backoff:.2f}s", flush=True)

    # ---------------------------------------------------------- control plane

    def shard_map(self) -> Dict[str, Any]:
        """The document pooled clients route by (also: the fleet roster)."""
        with self._lock:
            return {
                "version": self._version,
                "shard_by": self.config.shard_by,
                "replicas": sharding.DEFAULT_REPLICAS,
                "shard_count": self.config.workers,
                "sketches": self.sketch_names,
                "assignment": self.assignment(),
                "workers": [w.info() for w in self._workers],
            }

    def fleet_stats(self) -> Dict[str, Any]:
        """Worker roster plus the merged per-worker metrics snapshots."""
        with self._lock:
            workers = [w.info() for w in self._workers]
            targets = [(w.metrics_host, w.metrics_port)
                       for w in self._workers
                       if w.state == "up" and w.metrics_port is not None]
        snapshots = [fetch_snapshot(host, port) for host, port in targets]
        return {
            "uptime_s": (time.monotonic() - self._started_at
                         if self._started_at is not None else 0.0),
            "restarts_total": self.restarts_total,
            "workers": workers,
            "metrics": merge_snapshots(snapshots),
        }

    def fleet_snapshot(self) -> Dict[str, Any]:
        """The aggregated registry snapshot behind the fleet ``/metrics``.

        Workers' snapshots are merged (:mod:`repro.obs.fleet`) with the
        supervisor's own registry (the ``fleet.*`` instruments), so one
        scrape covers the tier.
        """
        with self._lock:
            targets = [(w.metrics_host, w.metrics_port)
                       for w in self._workers
                       if w.state == "up" and w.metrics_port is not None]
        snapshots: List[Optional[Dict]] = [
            fetch_snapshot(host, port) for host, port in targets]
        snapshots.append(get_metrics().snapshot())
        return merge_snapshots(snapshots)

    def fleet_statusz(self) -> Dict[str, Any]:
        """The fleet ``/statusz``: roster, versions, restart history."""
        with self._lock:
            return {
                "role": "supervisor",
                "protocol": protocol.PROTOCOL_VERSION,
                "uptime_s": (time.monotonic() - self._started_at
                             if self._started_at is not None else 0.0),
                "shard_by": self.config.shard_by,
                "version": self._version,
                "restarts_total": self.restarts_total,
                "workers": [w.info() for w in self._workers],
            }

    def _start_control(self) -> None:
        supervisor = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                while True:
                    try:
                        line = self.rfile.readline(protocol.MAX_LINE_BYTES + 1)
                    except OSError:
                        return
                    if not line:
                        return
                    if not line.strip():
                        continue
                    try:
                        self.wfile.write(
                            supervisor._handle_control_line(line))
                        self.wfile.flush()
                    except OSError:
                        return

        class ControlServer(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._control = ControlServer(
            (self.config.host, self.config.port), Handler)
        self._control_thread = threading.Thread(
            target=self._control.serve_forever,
            name="repro-supervisor-control", daemon=True)
        self._control_thread.start()

    def _handle_control_line(self, line: bytes) -> bytes:
        get_metrics().counter("fleet.control.requests").inc()
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            data, _ = protocol.encode_response(
                protocol.error_response(None, exc.code, exc.message))
            return data
        op = request["op"]
        try:
            if op == "health":
                with self._lock:
                    up = sum(1 for w in self._workers if w.state == "up")
                response = protocol.ok_response(
                    request, status="ok", role="supervisor",
                    protocol=protocol.PROTOCOL_VERSION,
                    sketches=self.sketch_names,
                    workers_up=up,
                    uptime_s=(time.monotonic() - self._started_at
                              if self._started_at is not None else 0.0))
            elif op == "shard_map":
                response = protocol.ok_response(request, **self.shard_map())
            elif op == "fleet_stats":
                response = protocol.ok_response(request, **self.fleet_stats())
            else:
                response = protocol.error_response(
                    request, "unknown_op",
                    f"op {op!r} is not served by the supervisor control "
                    "endpoint; data ops go to the workers (fetch shard_map)")
        except Exception as exc:  # noqa: BLE001 - fail the request, not the tier
            response = protocol.error_response(
                request, "internal", f"{type(exc).__name__}: {exc}")
        data, _ = protocol.encode_response(response)
        return data
