"""The sketch registry: named, pinned synopses ready to serve.

A serving daemon holds several frozen TreeSketches at once (one per
document or per budget tier) and routes each request by name.  The
registry loads them through :mod:`repro.core.io` (stable summaries are
promoted to their zero-error sketch, so anything `save_synopsis` wrote is
servable, including ``.json.gz``), pins them in memory, and gives each
one a dedicated :class:`repro.core.qcache.QueryCache` -- the per-sketch
canonical-query LRU that makes repeated serving cheap.

Sketches are registered once, before the server starts, and treated as
immutable afterwards; nothing here locks, because lookups are read-only
dict hits.
"""

from __future__ import annotations

import os
from typing import Container, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.io import load_synopsis
from repro.core.qcache import QueryCache
from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch


def name_from_path(path: str) -> str:
    """Default sketch name for a file: basename minus ``.json[.gz]``."""
    base = os.path.basename(path)
    for suffix in (".json.gz", ".json"):
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return os.path.splitext(base)[0] or base


def parse_spec(spec: str) -> Tuple[str, str]:
    """Split one CLI sketch spec ``[NAME=]PATH`` into ``(name, path)``.

    Naming is resolved *before* any file is read, so the sharded serving
    tier can decide ownership of a sketch (``repro.serve.sharding``)
    without loading it -- a worker only pays load time for its own shard.
    """
    name, sep, path = spec.partition("=")
    if not sep:
        return name_from_path(spec), spec
    if not name:
        raise ValueError(f"empty sketch name in spec {spec!r}")
    return name, path


class RegisteredSketch:
    """One pinned sketch: the synopsis, its cache, and its provenance."""

    __slots__ = ("name", "sketch", "cache", "path")

    def __init__(self, name: str, sketch: TreeSketch, cache: QueryCache,
                 path: Optional[str] = None) -> None:
        self.name = name
        self.sketch = sketch
        self.cache = cache
        self.path = path

    def describe(self) -> Dict[str, object]:
        """Metadata for ``list_sketches`` responses."""
        sketch = self.sketch
        return {
            "name": self.name,
            "path": self.path,
            "nodes": sketch.num_nodes,
            "edges": sketch.num_edges,
            "size_bytes": sketch.size_bytes(),
            "cache": self.cache.info(),
        }


class SketchRegistry:
    """Name -> :class:`RegisteredSketch`, with load-time promotion."""

    def __init__(self, cache_size: Optional[int] = 256) -> None:
        self._sketches: Dict[str, RegisteredSketch] = {}
        self.cache_size = cache_size

    def register(self, name: str,
                 synopsis: Union[StableSummary, TreeSketch],
                 path: Optional[str] = None) -> RegisteredSketch:
        """Pin an in-memory synopsis under ``name``.

        Stable summaries are promoted to their zero-error TreeSketch so
        every registered entry speaks the evaluation interface.
        """
        if not name:
            raise ValueError("sketch name must be non-empty")
        if name in self._sketches:
            raise ValueError(f"sketch {name!r} is already registered")
        if isinstance(synopsis, StableSummary):
            synopsis = TreeSketch.from_stable(synopsis)
        if not isinstance(synopsis, TreeSketch):
            raise TypeError(
                f"unsupported synopsis type {type(synopsis).__name__}"
            )
        entry = RegisteredSketch(
            name, synopsis, QueryCache(synopsis, maxsize=self.cache_size), path
        )
        self._sketches[name] = entry
        return entry

    def load(self, path: str, name: Optional[str] = None) -> RegisteredSketch:
        """Load a synopsis file (``.json`` or ``.json.gz``) and pin it."""
        return self.register(name or name_from_path(path),
                             load_synopsis(path), path=path)

    def load_specs(self, specs: Iterable[str],
                   only: Optional[Container[str]] = None,
                   ) -> List[RegisteredSketch]:
        """Load a list of CLI specs (``[NAME=]PATH``), optionally filtered.

        ``only`` restricts loading to the named subset -- the sharded
        serving tier's load-time filter: a worker passes its shard
        (:func:`repro.serve.sharding.shard_names`) and never touches the
        bytes of sketches other workers own.  Spec names are resolved
        eagerly (:func:`parse_spec`) so a duplicate name fails before any
        load work happens.
        """
        parsed = [parse_spec(spec) for spec in specs]
        names = [name for name, _ in parsed]
        for name in names:
            if names.count(name) > 1:
                raise ValueError(f"duplicate sketch name {name!r} in specs")
        loaded = []
        for name, path in parsed:
            if only is not None and name not in only:
                continue
            loaded.append(self.load(path, name=name))
        return loaded

    def get(self, name: Optional[str] = None) -> RegisteredSketch:
        """Look up by name; ``None`` resolves iff exactly one is registered.

        Raises :class:`KeyError` with a client-ready message otherwise
        (the server maps it to an ``unknown_sketch`` error).
        """
        if name is None:
            if len(self._sketches) == 1:
                return next(iter(self._sketches.values()))
            raise KeyError(
                "request must name a sketch: server holds "
                f"{sorted(self._sketches)}"
            )
        entry = self._sketches.get(name)
        if entry is None:
            raise KeyError(
                f"unknown sketch {name!r}; available: {sorted(self._sketches)}"
            )
        return entry

    def names(self) -> List[str]:
        return sorted(self._sketches)

    def describe_all(self) -> List[Dict[str, object]]:
        return [self._sketches[name].describe() for name in self.names()]

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, name: object) -> bool:
        return name in self._sketches
