"""The sketch registry: named, pinned synopses ready to serve.

A serving daemon holds several frozen TreeSketches at once (one per
document or per budget tier) and routes each request by name.  The
registry loads them through :mod:`repro.core.io` (stable summaries are
promoted to their zero-error sketch, so anything `save_synopsis` wrote is
servable, including ``.json.gz``), pins them in memory, and gives each
one a dedicated :class:`repro.core.qcache.QueryCache` -- the per-sketch
canonical-query LRU that makes repeated serving cheap.

Frozen sketches are registered once, before the server starts, and
treated as immutable afterwards; lookups are read-only dict hits and
never lock.  **Live** entries (:class:`LiveSketch`, loaded from a raw
``.xml`` document with a live budget) additionally own a
:class:`repro.core.live.SketchMaintainer` and accept ``update``
mutations: each mutation runs under the entry's lock, materializes a
fresh snapshot, and swaps it in through
:meth:`repro.core.qcache.QueryCache.invalidate` -- the epoch bump that
guarantees a post-mutation request can never be answered from a
pre-mutation cache entry (docs/MAINTENANCE.md).

Binary ``.tsb`` stores (docs/STORAGE.md) get two extras here.  They are
mmap-loaded, so N supervisor-forked workers pinning the same file share
one physical copy of the section buffers through the page cache.  And
their ``.tsb.cache`` sidecar -- selectivities a previous daemon process
persisted on graceful shutdown via :meth:`SketchRegistry.save_caches` --
is restored into the fresh :class:`QueryCache` at load time iff its
checksum still matches the store (``store.cache.restored`` /
``store.cache.ignored_stale`` count the outcomes), which is what makes
a daemon restart warm instead of cold.
"""

from __future__ import annotations

import os
import threading
from typing import Container, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.io import load_synopsis
from repro.core.qcache import QueryCache
from repro.core.stable import StableSummary
from repro.core.store import load_cache_sidecar, save_cache_sidecar
from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics


def name_from_path(path: str) -> str:
    """Default sketch name for a file: basename minus its synopsis suffix."""
    base = os.path.basename(path)
    for suffix in (".json.gz", ".json", ".tsb", ".xml"):
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return os.path.splitext(base)[0] or base


def parse_spec(spec: str) -> Tuple[str, str]:
    """Split one CLI sketch spec ``[NAME=]PATH`` into ``(name, path)``.

    Naming is resolved *before* any file is read, so the sharded serving
    tier can decide ownership of a sketch (``repro.serve.sharding``)
    without loading it -- a worker only pays load time for its own shard.
    """
    name, sep, path = spec.partition("=")
    if not sep:
        return name_from_path(spec), spec
    if not name:
        raise ValueError(f"empty sketch name in spec {spec!r}")
    return name, path


class RegisteredSketch:
    """One pinned sketch: the synopsis, its cache, and its provenance.

    ``checksum`` is the ``.tsb`` payload CRC32 for mmap-loaded sketches
    (None for JSON loads) -- the key that scopes this sketch's cache
    sidecar, so a sidecar written against yesterday's synopsis can never
    warm today's.
    """

    __slots__ = ("name", "sketch", "cache", "path", "checksum")

    def __init__(self, name: str, sketch: TreeSketch, cache: QueryCache,
                 path: Optional[str] = None,
                 checksum: Optional[int] = None) -> None:
        self.name = name
        self.sketch = sketch
        self.cache = cache
        self.path = path
        self.checksum = checksum

    def describe(self) -> Dict[str, object]:
        """Metadata for ``list_sketches`` responses."""
        sketch = self.sketch
        return {
            "name": self.name,
            "path": self.path,
            "nodes": sketch.num_nodes,
            "edges": sketch.num_edges,
            "size_bytes": sketch.size_bytes(),
            "cache": self.cache.info(),
            "checksum": self.checksum,
            "live": False,
        }


class LiveSketch(RegisteredSketch):
    """A mutable registry entry backed by a live sketch maintainer.

    ``sketch`` is always the maintainer's most recent snapshot -- a plain
    frozen :class:`TreeSketch`, so every read path (eval/estimate/expand,
    the query cache, describe) works unchanged.  :meth:`update` is the
    only writer: it applies one mutation under ``_mut_lock`` (serializing
    concurrent updates), materializes the next snapshot, and rebinds it
    through ``cache.invalidate(sketch=...)`` so the swap and the cache
    flush are atomic with respect to in-flight reads.
    """

    __slots__ = ("maintainer", "_mut_lock")

    def __init__(self, name: str, maintainer, cache: QueryCache,
                 path: Optional[str] = None) -> None:
        super().__init__(name, cache.sketch, cache, path=path, checksum=None)
        self.maintainer = maintainer
        self._mut_lock = threading.Lock()

    def update(self, action: str, *, parent_label: Optional[str] = None,
               parent_ordinal: int = 0, subtree=None,
               label: Optional[str] = None, ordinal: int = 0,
               ) -> Dict[str, object]:
        """Apply one mutation; returns the post-mutation wire payload.

        Raises :class:`KeyError` when the addressed node does not exist
        and :class:`ValueError` for an invalid edit (deleting the root,
        malformed subtree spec) -- the server maps both to ``bad_request``.
        """
        from repro.core.live import find_labeled

        with self._mut_lock:
            maintainer = self.maintainer
            root = maintainer.tree.root
            if action == "insert_subtree":
                parent = find_labeled(root, parent_label, parent_ordinal)
                if parent is None:
                    raise KeyError(
                        f"no node labeled {parent_label!r} with ordinal "
                        f"{parent_ordinal} in sketch {self.name!r}")
                maintainer.insert_subtree(parent, _spec_from_wire(subtree))
            elif action == "delete_subtree":
                node = find_labeled(root, label, ordinal)
                if node is None:
                    raise KeyError(
                        f"no node labeled {label!r} with ordinal {ordinal} "
                        f"in sketch {self.name!r}")
                maintainer.delete_subtree(node)
            else:
                raise ValueError(f"unknown update action {action!r}")
            snapshot = maintainer.snapshot()
            # The epoch bump *is* the consistency barrier: entries cached
            # against the pre-mutation snapshot are dropped and the new
            # snapshot rebound under the cache's single-flight lock.
            epoch = self.cache.invalidate(sketch=snapshot)
            self.sketch = snapshot
            info = maintainer.info()
            return {
                "sketch": self.name,
                "action": action,
                "epoch": epoch,
                "mutations": info["mutations"],
                "remerges": info["remerges"],
                "debt": info["debt_total"],
                "nodes": snapshot.num_nodes,
                "edges": snapshot.num_edges,
                "size_bytes": snapshot.size_bytes(),
            }

    def observe_error(self, rel_error: float) -> Optional[int]:
        """Feed one shadow-measured relative error to the maintainer's
        adaptive ``debt_threshold`` controller (no-op when disabled).

        Runs under the mutation lock -- the controller may trigger a
        re-merge, which must serialize with concurrent updates like any
        other write.  When it does, the served snapshot is refreshed
        through the same epoch-bump barrier as :meth:`update`; the new
        epoch is returned so the caller can invalidate queued shadow
        samples, None otherwise.
        """
        maintainer = self.maintainer
        if maintainer.adaptive is None:
            return None
        with self._mut_lock:
            before = maintainer.remerges
            maintainer.observe_error(rel_error)
            if maintainer.remerges == before:
                return None
            snapshot = maintainer.snapshot()
            epoch = self.cache.invalidate(sketch=snapshot)
            self.sketch = snapshot
            return epoch

    def describe(self) -> Dict[str, object]:
        doc = super().describe()
        info = self.maintainer.info()
        doc["live"] = True
        doc["epoch"] = self.cache.epoch
        doc["mutations"] = info["mutations"]
        doc["remerges"] = info["remerges"]
        doc["debt"] = info["debt_total"]
        doc["debt_threshold"] = info["debt_threshold"]
        if info.get("adaptive") is not None:
            doc["adaptive"] = info["adaptive"]
        return doc


def _spec_from_wire(spec):
    """Wire subtree spec -> maintainer nested-tuple spec, re-validated.

    The protocol layer already validates requests off the wire, but
    :meth:`LiveSketch.update` is also called directly (CLI script replay,
    tests), so malformed specs must still fail as :class:`ValueError`,
    never a maintainer-internal TypeError.
    """
    if isinstance(spec, str) and spec:
        return spec
    if (isinstance(spec, (list, tuple)) and len(spec) == 2
            and isinstance(spec[0], str) and spec[0]
            and isinstance(spec[1], (list, tuple))):
        return (spec[0], [_spec_from_wire(child) for child in spec[1]])
    raise ValueError(
        "subtree spec must be a label string or a [label, [child, ...]] pair")


class SketchRegistry:
    """Name -> :class:`RegisteredSketch`, with load-time promotion."""

    def __init__(self, cache_size: Optional[int] = 256,
                 live_budget_bytes: Optional[int] = None) -> None:
        self._sketches: Dict[str, RegisteredSketch] = {}
        self.cache_size = cache_size
        #: Synopsis budget for sketches loaded live from raw ``.xml``
        #: documents; None disables live loading (the default).
        self.live_budget_bytes = live_budget_bytes

    def register(self, name: str,
                 synopsis: Union[StableSummary, TreeSketch],
                 path: Optional[str] = None,
                 checksum: Optional[int] = None) -> RegisteredSketch:
        """Pin an in-memory synopsis under ``name``.

        Stable summaries are promoted to their zero-error TreeSketch so
        every registered entry speaks the evaluation interface.
        """
        if not name:
            raise ValueError("sketch name must be non-empty")
        if name in self._sketches:
            raise ValueError(f"sketch {name!r} is already registered")
        if isinstance(synopsis, StableSummary):
            synopsis = TreeSketch.from_stable(synopsis)
        if not isinstance(synopsis, TreeSketch):
            raise TypeError(
                f"unsupported synopsis type {type(synopsis).__name__}"
            )
        entry = RegisteredSketch(
            name, synopsis, QueryCache(synopsis, maxsize=self.cache_size),
            path, checksum
        )
        self._sketches[name] = entry
        return entry

    def register_live(self, name: str, maintainer,
                      path: Optional[str] = None) -> LiveSketch:
        """Pin a :class:`repro.core.live.SketchMaintainer` as a mutable entry."""
        if not name:
            raise ValueError("sketch name must be non-empty")
        if name in self._sketches:
            raise ValueError(f"sketch {name!r} is already registered")
        cache = QueryCache(maintainer.snapshot(), maxsize=self.cache_size)
        entry = LiveSketch(name, maintainer, cache, path=path)
        self._sketches[name] = entry
        return entry

    def load(self, path: str, name: Optional[str] = None) -> RegisteredSketch:
        """Load a synopsis file (``.json[.gz]``/``.tsb``/``.xml``) and pin it.

        A ``.tsb`` store additionally restores its checksum-matched cache
        sidecar (if one exists) into the fresh query cache -- the warm-
        restart path.  Stale or corrupt sidecars are ignored, never served.

        A raw ``.xml`` document is pinned **live**: the registry builds a
        :class:`repro.core.live.SketchMaintainer` at
        :attr:`live_budget_bytes` and the entry accepts ``update``
        mutations (requires a live budget; see docs/MAINTENANCE.md).
        """
        if path.endswith(".xml"):
            if self.live_budget_bytes is None:
                raise ValueError(
                    f"cannot pin raw document {path!r}: live loading needs "
                    "a synopsis budget (serve --live-budget-kb)")
            from repro.core.live import SketchMaintainer
            from repro.xmltree.parser import parse_xml_file

            tree = parse_xml_file(path)
            maintainer = SketchMaintainer(tree, self.live_budget_bytes)
            return self.register_live(name or name_from_path(path),
                                      maintainer, path=path)
        synopsis = load_synopsis(path)
        checksum = getattr(synopsis, "tsb_checksum", None)
        entry = self.register(name or name_from_path(path), synopsis,
                              path=path, checksum=checksum)
        if checksum is not None:
            doc = load_cache_sidecar(path, checksum)
            selectivities = (doc or {}).get("selectivities")
            if isinstance(selectivities, dict) and selectivities:
                try:
                    restored = entry.cache.seed_selectivities(selectivities)
                except (TypeError, ValueError):
                    get_metrics().counter("store.cache.ignored_stale").inc()
                else:
                    get_metrics().counter("store.cache.restored").inc(restored)
        return entry

    def load_specs(self, specs: Iterable[str],
                   only: Optional[Container[str]] = None,
                   ) -> List[RegisteredSketch]:
        """Load a list of CLI specs (``[NAME=]PATH``), optionally filtered.

        ``only`` restricts loading to the named subset -- the sharded
        serving tier's load-time filter: a worker passes its shard
        (:func:`repro.serve.sharding.shard_names`) and never touches the
        bytes of sketches other workers own.  Spec names are resolved
        eagerly (:func:`parse_spec`) so a duplicate name fails before any
        load work happens.
        """
        parsed = [parse_spec(spec) for spec in specs]
        names = [name for name, _ in parsed]
        for name in names:
            if names.count(name) > 1:
                raise ValueError(f"duplicate sketch name {name!r} in specs")
        loaded = []
        for name, path in parsed:
            if only is not None and name not in only:
                continue
            loaded.append(self.load(path, name=name))
        return loaded

    def get(self, name: Optional[str] = None) -> RegisteredSketch:
        """Look up by name; ``None`` resolves iff exactly one is registered.

        Raises :class:`KeyError` with a client-ready message otherwise
        (the server maps it to an ``unknown_sketch`` error).
        """
        if name is None:
            if len(self._sketches) == 1:
                return next(iter(self._sketches.values()))
            raise KeyError(
                "request must name a sketch: server holds "
                f"{sorted(self._sketches)}"
            )
        entry = self._sketches.get(name)
        if entry is None:
            raise KeyError(
                f"unknown sketch {name!r}; available: {sorted(self._sketches)}"
            )
        return entry

    def invalidate(self, name: Optional[str] = None) -> Dict[str, int]:
        """Bump the cache epoch of one sketch (or all of them).

        The registry-level mutation barrier: returns ``{name: new epoch}``
        for every invalidated entry.  Used when a synopsis file is
        reloaded in place or an operator wants to force cold caches; live
        entries bump their own epoch per mutation via
        :meth:`LiveSketch.update`.
        """
        names = [self.get(name).name] if name is not None else self.names()
        return {n: self._sketches[n].cache.invalidate() for n in names}

    def save_caches(self) -> int:
        """Persist each ``.tsb``-backed sketch's warm state to its sidecar.

        Called by the serving daemon after draining on graceful shutdown:
        every sketch with a known checksum and at least one answerable
        selectivity gets its ``.tsb.cache`` sidecar written (atomically,
        preserving any merge-memo payload already there).  Live entries
        have no checksum and are skipped -- their answers are only valid
        for the current mutation epoch.  Returns the
        number of sidecars written; failures to write one sidecar are
        counted (``store.cache.save_failed``) but never block shutdown.
        """
        saved = 0
        for name in self.names():
            entry = self._sketches[name]
            if entry.path is None or entry.checksum is None:
                continue
            selectivities = entry.cache.export_selectivities()
            if not selectivities:
                continue
            try:
                save_cache_sidecar(entry.path, entry.checksum,
                                   selectivities=selectivities)
            except OSError:
                get_metrics().counter("store.cache.save_failed").inc()
                continue
            saved += 1
        if saved:
            get_metrics().counter("store.cache.saved").inc(saved)
        return saved

    def names(self) -> List[str]:
        return sorted(self._sketches)

    def describe_all(self) -> List[Dict[str, object]]:
        return [self._sketches[name].describe() for name in self.names()]

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, name: object) -> bool:
        return name in self._sketches
