"""The sketch registry: named, pinned synopses ready to serve.

A serving daemon holds several frozen TreeSketches at once (one per
document or per budget tier) and routes each request by name.  The
registry loads them through :mod:`repro.core.io` (stable summaries are
promoted to their zero-error sketch, so anything `save_synopsis` wrote is
servable, including ``.json.gz``), pins them in memory, and gives each
one a dedicated :class:`repro.core.qcache.QueryCache` -- the per-sketch
canonical-query LRU that makes repeated serving cheap.

Sketches are registered once, before the server starts, and treated as
immutable afterwards; nothing here locks, because lookups are read-only
dict hits.

Binary ``.tsb`` stores (docs/STORAGE.md) get two extras here.  They are
mmap-loaded, so N supervisor-forked workers pinning the same file share
one physical copy of the section buffers through the page cache.  And
their ``.tsb.cache`` sidecar -- selectivities a previous daemon process
persisted on graceful shutdown via :meth:`SketchRegistry.save_caches` --
is restored into the fresh :class:`QueryCache` at load time iff its
checksum still matches the store (``store.cache.restored`` /
``store.cache.ignored_stale`` count the outcomes), which is what makes
a daemon restart warm instead of cold.
"""

from __future__ import annotations

import os
from typing import Container, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.io import load_synopsis
from repro.core.qcache import QueryCache
from repro.core.stable import StableSummary
from repro.core.store import load_cache_sidecar, save_cache_sidecar
from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics


def name_from_path(path: str) -> str:
    """Default sketch name for a file: basename minus ``.json[.gz]``/``.tsb``."""
    base = os.path.basename(path)
    for suffix in (".json.gz", ".json", ".tsb"):
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return os.path.splitext(base)[0] or base


def parse_spec(spec: str) -> Tuple[str, str]:
    """Split one CLI sketch spec ``[NAME=]PATH`` into ``(name, path)``.

    Naming is resolved *before* any file is read, so the sharded serving
    tier can decide ownership of a sketch (``repro.serve.sharding``)
    without loading it -- a worker only pays load time for its own shard.
    """
    name, sep, path = spec.partition("=")
    if not sep:
        return name_from_path(spec), spec
    if not name:
        raise ValueError(f"empty sketch name in spec {spec!r}")
    return name, path


class RegisteredSketch:
    """One pinned sketch: the synopsis, its cache, and its provenance.

    ``checksum`` is the ``.tsb`` payload CRC32 for mmap-loaded sketches
    (None for JSON loads) -- the key that scopes this sketch's cache
    sidecar, so a sidecar written against yesterday's synopsis can never
    warm today's.
    """

    __slots__ = ("name", "sketch", "cache", "path", "checksum")

    def __init__(self, name: str, sketch: TreeSketch, cache: QueryCache,
                 path: Optional[str] = None,
                 checksum: Optional[int] = None) -> None:
        self.name = name
        self.sketch = sketch
        self.cache = cache
        self.path = path
        self.checksum = checksum

    def describe(self) -> Dict[str, object]:
        """Metadata for ``list_sketches`` responses."""
        sketch = self.sketch
        return {
            "name": self.name,
            "path": self.path,
            "nodes": sketch.num_nodes,
            "edges": sketch.num_edges,
            "size_bytes": sketch.size_bytes(),
            "cache": self.cache.info(),
            "checksum": self.checksum,
        }


class SketchRegistry:
    """Name -> :class:`RegisteredSketch`, with load-time promotion."""

    def __init__(self, cache_size: Optional[int] = 256) -> None:
        self._sketches: Dict[str, RegisteredSketch] = {}
        self.cache_size = cache_size

    def register(self, name: str,
                 synopsis: Union[StableSummary, TreeSketch],
                 path: Optional[str] = None,
                 checksum: Optional[int] = None) -> RegisteredSketch:
        """Pin an in-memory synopsis under ``name``.

        Stable summaries are promoted to their zero-error TreeSketch so
        every registered entry speaks the evaluation interface.
        """
        if not name:
            raise ValueError("sketch name must be non-empty")
        if name in self._sketches:
            raise ValueError(f"sketch {name!r} is already registered")
        if isinstance(synopsis, StableSummary):
            synopsis = TreeSketch.from_stable(synopsis)
        if not isinstance(synopsis, TreeSketch):
            raise TypeError(
                f"unsupported synopsis type {type(synopsis).__name__}"
            )
        entry = RegisteredSketch(
            name, synopsis, QueryCache(synopsis, maxsize=self.cache_size),
            path, checksum
        )
        self._sketches[name] = entry
        return entry

    def load(self, path: str, name: Optional[str] = None) -> RegisteredSketch:
        """Load a synopsis file (``.json[.gz]`` or ``.tsb``) and pin it.

        A ``.tsb`` store additionally restores its checksum-matched cache
        sidecar (if one exists) into the fresh query cache -- the warm-
        restart path.  Stale or corrupt sidecars are ignored, never served.
        """
        synopsis = load_synopsis(path)
        checksum = getattr(synopsis, "tsb_checksum", None)
        entry = self.register(name or name_from_path(path), synopsis,
                              path=path, checksum=checksum)
        if checksum is not None:
            doc = load_cache_sidecar(path, checksum)
            selectivities = (doc or {}).get("selectivities")
            if isinstance(selectivities, dict) and selectivities:
                try:
                    restored = entry.cache.seed_selectivities(selectivities)
                except (TypeError, ValueError):
                    get_metrics().counter("store.cache.ignored_stale").inc()
                else:
                    get_metrics().counter("store.cache.restored").inc(restored)
        return entry

    def load_specs(self, specs: Iterable[str],
                   only: Optional[Container[str]] = None,
                   ) -> List[RegisteredSketch]:
        """Load a list of CLI specs (``[NAME=]PATH``), optionally filtered.

        ``only`` restricts loading to the named subset -- the sharded
        serving tier's load-time filter: a worker passes its shard
        (:func:`repro.serve.sharding.shard_names`) and never touches the
        bytes of sketches other workers own.  Spec names are resolved
        eagerly (:func:`parse_spec`) so a duplicate name fails before any
        load work happens.
        """
        parsed = [parse_spec(spec) for spec in specs]
        names = [name for name, _ in parsed]
        for name in names:
            if names.count(name) > 1:
                raise ValueError(f"duplicate sketch name {name!r} in specs")
        loaded = []
        for name, path in parsed:
            if only is not None and name not in only:
                continue
            loaded.append(self.load(path, name=name))
        return loaded

    def get(self, name: Optional[str] = None) -> RegisteredSketch:
        """Look up by name; ``None`` resolves iff exactly one is registered.

        Raises :class:`KeyError` with a client-ready message otherwise
        (the server maps it to an ``unknown_sketch`` error).
        """
        if name is None:
            if len(self._sketches) == 1:
                return next(iter(self._sketches.values()))
            raise KeyError(
                "request must name a sketch: server holds "
                f"{sorted(self._sketches)}"
            )
        entry = self._sketches.get(name)
        if entry is None:
            raise KeyError(
                f"unknown sketch {name!r}; available: {sorted(self._sketches)}"
            )
        return entry

    def save_caches(self) -> int:
        """Persist each ``.tsb``-backed sketch's warm state to its sidecar.

        Called by the serving daemon after draining on graceful shutdown:
        every sketch with a known checksum and at least one answerable
        selectivity gets its ``.tsb.cache`` sidecar written (atomically,
        preserving any merge-memo payload already there).  Returns the
        number of sidecars written; failures to write one sidecar are
        counted (``store.cache.save_failed``) but never block shutdown.
        """
        saved = 0
        for name in self.names():
            entry = self._sketches[name]
            if entry.path is None or entry.checksum is None:
                continue
            selectivities = entry.cache.export_selectivities()
            if not selectivities:
                continue
            try:
                save_cache_sidecar(entry.path, entry.checksum,
                                   selectivities=selectivities)
            except OSError:
                get_metrics().counter("store.cache.save_failed").inc()
                continue
            saved += 1
        if saved:
            get_metrics().counter("store.cache.saved").inc(saved)
        return saved

    def names(self) -> List[str]:
        return sorted(self._sketches)

    def describe_all(self) -> List[Dict[str, object]]:
        return [self._sketches[name].describe() for name in self.names()]

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, name: object) -> bool:
        return name in self._sketches
