"""Online approximation-quality telemetry: the shadow accuracy sampler.

The daemon trades exactness for speed -- that is the paper's whole
bargain -- but until now nothing measured how good the shipped answers
actually are under live traffic.  The sampler closes that loop: for a
configurable fraction of served ``estimate``/``eval`` answers it replays
the query against a designated *reference* (the exact engine over a held
copy of the document, or a lossless stable summary) and records the
relative selectivity error -- the paper's workload error metric,
observed online.

Everything happens off the hot path.  :meth:`ShadowSampler.offer` runs
on the event loop after the response is already computed: it flips a
deterministic sampling accumulator and, on a sampled request, enqueues
``(sketch, query, estimate)`` on a bounded queue -- O(1), no locks
shared with the data plane, no admission slot.  A dedicated daemon
thread drains the queue and runs the (possibly expensive) reference
evaluation; when the queue is full the sample is dropped and counted,
never blocked on.  A slow or wedged reference therefore degrades the
*telemetry*, not the serving.

Samples are tagged with the sketch's **cache epoch** at offer time.  A
live ``update`` mutates the sketch and bumps its epoch; a queued sample
scored after that mutation would compare a pre-mutation estimate against
the post-mutation reference and report bogus drift.  The drain thread
therefore drops any sample whose epoch no longer matches the sketch's
current epoch (``serve.accuracy.stale_dropped``) instead of scoring it.

Metrics: ``serve.accuracy.sampled`` / ``.evaluated`` / ``.dropped`` /
``.stale_dropped`` / ``.failed`` counters and the
``serve.accuracy.rel_error`` histogram (plus windowed
``serve.accuracy.rel_error.window``).  The sampler also keeps plain-int
mirrors of its tallies so ``/statusz`` can report them even when the obs
registry is disabled.  When an :class:`repro.obs.accuracy.AccuracyLedger`
is attached, every scored sample is folded into the sketch's error
budget as well.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch
from repro.obs import get_metrics
from repro.query.twig import TwigQuery

__all__ = ["ShadowSampler", "load_reference", "relative_error"]


def relative_error(estimate: float, truth: float) -> float:
    """The paper's sanity-bounded relative selectivity error."""
    return abs(float(estimate) - float(truth)) / max(abs(float(truth)), 1.0)


def load_reference(path: str) -> Callable[[TwigQuery], float]:
    """Build a reference estimator from a file path.

    ``*.xml`` loads the document and answers with the exact engine
    (ground truth); anything else is loaded as a synopsis -- a stable
    summary is promoted to its zero-error sketch, so pointing at the
    build-time stable summary measures pure compression error.
    """
    if path.endswith(".xml"):
        from repro.engine.exact import ExactEvaluator
        from repro.xmltree.parser import parse_xml_file

        evaluator = ExactEvaluator(parse_xml_file(path))
        return lambda query: float(evaluator.selectivity(query))
    from repro.core.io import load_synopsis

    synopsis = load_synopsis(path)
    if isinstance(synopsis, StableSummary):
        synopsis = TreeSketch.from_stable(synopsis)
    if not isinstance(synopsis, TreeSketch):
        raise TypeError(
            f"unsupported reference synopsis type {type(synopsis).__name__}")
    return lambda query: estimate_selectivity(eval_query(synopsis, query))


class ShadowSampler:
    """Samples served answers and scores them against a reference.

    ``fraction`` in ``[0, 1]`` selects every ``1/fraction``-th offered
    answer via a deterministic accumulator (no RNG: a 10% fraction
    samples exactly every 10th answer, which tests can pin).  ``0``
    disables sampling entirely -- the default posture; the daemon only
    constructs a sampler when explicitly configured.
    """

    def __init__(self, reference: Callable[[TwigQuery], float],
                 fraction: float, max_queue: int = 256,
                 window_s: float = 300.0, ledger=None,
                 eval_delay_s: float = 0.0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.reference = reference
        self.fraction = float(fraction)
        self.window_s = float(window_s)
        self.ledger = ledger
        # Test-only knob (cf. handler_delay_s): holds each drained sample
        # before scoring so staleness races are deterministic in CI.
        self.eval_delay_s = float(eval_delay_s)
        self._accumulator = 0.0
        self._queue: "queue.Queue[Optional[tuple]]" = queue.Queue(max_queue)
        self._thread: Optional[threading.Thread] = None
        # Current cache epoch per sketch, advanced by note_epoch() on
        # mutation; samples carrying an older epoch are dropped as stale.
        self._epochs: Dict[str, int] = {}
        # Plain-int mirrors so /statusz reports even with obs disabled.
        self.sampled_total = 0
        self.evaluated_total = 0
        self.dropped_total = 0
        self.stale_dropped_total = 0
        self.failed_total = 0
        self.error_sum = 0.0
        self.error_max = 0.0
        self.last_error: Optional[float] = None

    # ------------------------------------------------------------- hot path

    def offer(self, sketch_name: str, query: TwigQuery,
              estimate: float, epoch: Optional[int] = None) -> bool:
        """Maybe enqueue one served answer for shadow scoring.

        Called on the event loop after the response is finalized: a
        deterministic accumulator decides sampling, and the enqueue is
        non-blocking -- a full queue drops the sample (counted) rather
        than slowing the request path.  ``epoch`` is the sketch's cache
        epoch at answer time; a later mutation invalidates the sample
        (see :meth:`note_epoch`).  Returns whether the answer was
        enqueued.
        """
        self._accumulator += self.fraction
        if self._accumulator < 1.0:
            return False
        self._accumulator -= 1.0
        self.sampled_total += 1
        get_metrics().counter("serve.accuracy.sampled").inc()
        try:
            self._queue.put_nowait(
                (sketch_name, query, float(estimate), epoch))
        except queue.Full:
            self.dropped_total += 1
            get_metrics().counter("serve.accuracy.dropped").inc()
            return False
        return True

    def note_epoch(self, sketch_name: str, epoch: int) -> None:
        """Advance ``sketch_name``'s current epoch after a mutation.

        Queued samples tagged with an older epoch were scored against a
        sketch that no longer exists; the drain thread drops them.
        Plain dict assignment (atomic under the GIL), called from the
        update path.
        """
        self._epochs[sketch_name] = int(epoch)

    # -------------------------------------------------------- shadow thread

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            sketch_name, query, estimate, epoch = item
            metrics = get_metrics()
            if self.eval_delay_s > 0.0:
                time.sleep(self.eval_delay_s)
            current = self._epochs.get(sketch_name)
            if (epoch is not None and current is not None
                    and current != epoch):
                self.stale_dropped_total += 1
                metrics.counter("serve.accuracy.stale_dropped").inc()
                continue
            try:
                truth = self.reference(query)
            except Exception:  # noqa: BLE001 - telemetry must not die
                self.failed_total += 1
                metrics.counter("serve.accuracy.failed").inc()
                continue
            error = relative_error(estimate, truth)
            self.evaluated_total += 1
            self.error_sum += error
            self.error_max = max(self.error_max, error)
            self.last_error = error
            metrics.counter("serve.accuracy.evaluated").inc()
            metrics.histogram("serve.accuracy.rel_error").observe(error)
            metrics.windowed("serve.accuracy.rel_error.window",
                             window_s=self.window_s).observe(error)
            if self.ledger is not None:
                self.ledger.record(sketch_name, error)

    def start(self) -> "ShadowSampler":
        if self._thread is not None:
            raise RuntimeError("shadow sampler is already started")
        self._thread = threading.Thread(
            target=self._drain, name="repro-serve-shadow", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        self._queue.put(None)  # sentinel: drain what is queued, then exit
        self._thread.join(timeout)
        self._thread = None

    # ------------------------------------------------------------ reporting

    def info(self) -> Dict[str, Any]:
        """Tallies and error aggregates for ``/statusz`` and ``stats``."""
        evaluated = self.evaluated_total
        return {
            "fraction": self.fraction,
            "sampled": self.sampled_total,
            "evaluated": evaluated,
            "dropped": self.dropped_total,
            "stale_dropped": self.stale_dropped_total,
            "failed": self.failed_total,
            "pending": self._queue.qsize(),
            "rel_error_mean": (self.error_sum / evaluated) if evaluated else None,
            "rel_error_max": self.error_max if evaluated else None,
            "rel_error_last": self.last_error,
        }
