"""The asyncio TCP daemon serving approximate XML query answers.

Design, in one paragraph: the event loop owns all I/O and all
bookkeeping (admission, metrics, deadlines); sketch computation --
``eval_query`` / ``estimate_selectivity`` / ``expand_result`` through the
per-sketch :class:`~repro.core.qcache.QueryCache` -- runs on a small
thread pool so a slow query can never stall the control plane (``health``
keeps answering while the workers grind).  Every data-plane request
passes the :class:`~repro.serve.admission.AdmissionController`: beyond
``max_pending`` it is shed with a structured ``overloaded`` error, above
the ``degrade_watermark`` an ``eval`` is answered from the query cache
only (selectivity with ``degraded: true``, or ``overloaded`` on a cache
miss -- degradation must shed compute, not just response bytes), and
each admitted request runs under a deadline (``deadline_ms`` in the
request, else the server default) that maps to a ``deadline_exceeded``
error when it fires.  A deadline abandons the response, not the slot:
the admission slot is returned only when the worker actually finishes,
so admission always bounds real in-flight compute and sustained
timeouts surface as ``overloaded`` instead of an unbounded executor
queue.  Responses are capped at ``protocol.MAX_LINE_BYTES`` like
requests; an oversized one is replaced by a structured
``response_too_large`` error so the client's line framing never
desynchronizes.  The full protocol is specified in docs/SERVING.md.

The operational telemetry plane rides alongside: ``metrics_port``
starts the HTTP exposition sidecar (``/metrics`` Prometheus text,
``/healthz``, ``/statusz`` -- see :mod:`repro.obs.expo`), every request
carries a ``request_id`` correlation id stamped on its ``serve.request``
/ ``serve.execute`` trace spans, per-op latency percentiles flow through
windowed histograms, and an optional :class:`~repro.serve.shadow.
ShadowSampler` replays a fraction of served answers against a reference
off the hot path to measure live approximation error.

Embedding (what the tests and the CLI do)::

    registry = SketchRegistry()
    registry.load("xmark.json.gz")
    handle = start_server_thread(registry, ServeConfig(port=0))
    try:
        ...  # talk to ("127.0.0.1", handle.port) with repro.serve.client
    finally:
        handle.stop()
"""

from __future__ import annotations

import asyncio
import threading
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.estimate import estimate_bindings
from repro.core.expand import ExpansionLimitError, expand_result
from repro.core.explain import explain_estimate
from repro.obs import get_clock, get_metrics, get_tracer
from repro.obs.accuracy import AccuracyLedger
from repro.query.parser import parse_twig
from repro.query.twig import TwigQuery
from repro.serve import protocol
from repro.serve.admission import AdmissionController, Decision
from repro.serve.protocol import ProtocolError
from repro.serve.registry import LiveSketch, RegisteredSketch, SketchRegistry
from repro.serve.shadow import ShadowSampler
from repro.xmltree.serialize import to_xml


@dataclass
class ServeConfig:
    """Tunables for one :class:`SketchServer` instance.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.address`` after ``start()``).  ``workers`` sizes the
    compute thread pool -- 1 is right for a single-core host and keeps
    sketch computation fully serialized.  ``handler_delay_s`` is a
    test/debug knob: it delays each admitted data-plane request while
    holding its admission slot, which makes queue-pressure scenarios
    (shedding, degradation, deadlines) reproducible.

    Telemetry plane (docs/OBSERVABILITY.md): ``metrics_port`` (non-None)
    starts the HTTP exposition sidecar -- ``/metrics`` (Prometheus
    text), ``/healthz``, ``/statusz`` -- on ``host:metrics_port`` (0 =
    ephemeral; read ``server.metrics_address``).  ``latency_window_s``
    sizes the trailing window behind the ``serve.op.latency.*``
    percentiles.  ``shadow_fraction`` > 0 with a ``shadow_reference``
    estimator (see :func:`repro.serve.shadow.load_reference`) enables
    the online accuracy sampler -- **off by default**.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 64
    degrade_watermark: Optional[int] = None
    default_deadline_ms: float = 10_000.0
    max_expand_nodes: int = 200_000
    workers: int = 1
    handler_delay_s: float = 0.0
    metrics_port: Optional[int] = None
    latency_window_s: float = 60.0
    shadow_fraction: float = 0.0
    shadow_reference: Optional[Callable[[TwigQuery], float]] = None
    shadow_max_queue: int = 256
    #: Test/debug knob (cf. ``handler_delay_s``): holds each shadow
    #: sample on the drain thread before scoring it, making
    #: mutation-vs-sample staleness races reproducible.
    shadow_eval_delay_s: float = 0.0
    #: Error budget (docs/OBSERVABILITY.md "Accuracy plane"): a target
    #: relative error enables the :class:`repro.obs.accuracy.AccuracyLedger`
    #: -- shadow-scored samples feed per-sketch trailing-window burn
    #: rates and ok/warn/burning budget states, exported through
    #: ``/metrics`` and ``/statusz``.
    error_budget: Optional[float] = None
    error_budget_window: int = 64
    #: With an error budget set, wire measured drift back into each live
    #: sketch's :class:`repro.core.live.DebtController`, which tightens
    #: and relaxes ``debt_threshold`` instead of trusting the fixed knob.
    adaptive_maintenance: bool = False
    #: Request coalescing (docs/SERVING.md "Scaling out"): concurrent
    #: ``estimate`` ops against one sketch are grouped into a single
    #: ``estimate_selectivity_batch`` call.  ``coalesce_window_s`` bounds
    #: how long the first request of a batch waits for company (0 =
    #: flush on the next event-loop tick, so a lone request never waits);
    #: ``coalesce_max`` flushes a batch early when it fills.  Answers are
    #: bitwise-equal to the scalar path by construction (the batch DP
    #: reproduces the scalar estimator's float accumulation order).
    coalesce: bool = True
    coalesce_window_s: float = 0.0
    coalesce_max: int = 64
    #: Bind the listening socket with SO_REUSEPORT so several worker
    #: processes share one port and the kernel balances connections --
    #: the supervisor's ``--shard-by none`` mode.
    reuse_port: bool = False
    #: Periodic warm-state checkpointing: every ``cache_checkpoint_s``
    #: seconds the registry's ``.tsb.cache`` sidecars are rewritten on
    #: the worker pool (``registry.save_caches``), so a crash loses at
    #: most one interval of cache warmth instead of everything the
    #: graceful-shutdown save would have persisted.  None (default) keeps
    #: the shutdown-only behaviour.
    cache_checkpoint_s: Optional[float] = None


class SketchServer:
    """Line-delimited JSON query server over a :class:`SketchRegistry`."""

    def __init__(self, registry: SketchRegistry,
                 config: Optional[ServeConfig] = None) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            degrade_watermark=self.config.degrade_watermark,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started_at: Optional[float] = None
        self._exposition = None
        self._ledger: Optional[AccuracyLedger] = None
        if self.config.error_budget is not None:
            self._ledger = AccuracyLedger(
                target_rel_error=self.config.error_budget,
                window=self.config.error_budget_window,
            )
            for name in registry.names():
                self._ledger.track(name)
            self._ledger.subscribe(self._on_accuracy_sample)
            if self.config.adaptive_maintenance:
                for name in registry.names():
                    entry = registry.get(name)
                    if isinstance(entry, LiveSketch):
                        entry.maintainer.enable_adaptive(
                            target_rel_error=self.config.error_budget)
        self._shadow: Optional[ShadowSampler] = None
        if self.config.shadow_fraction > 0:
            if self.config.shadow_reference is None:
                raise ValueError(
                    "shadow_fraction > 0 requires a shadow_reference "
                    "estimator (see repro.serve.shadow.load_reference)"
                )
            self._shadow = ShadowSampler(
                self.config.shadow_reference,
                fraction=self.config.shadow_fraction,
                max_queue=self.config.shadow_max_queue,
                ledger=self._ledger,
                eval_delay_s=self.config.shadow_eval_delay_s,
            )
        self._batcher = _EstimateBatcher(self) if self.config.coalesce else None
        self._checkpoint_task: Optional[asyncio.Task] = None
        self.checkpoints = 0  # completed periodic sidecar checkpoints

    # ------------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def metrics_address(self) -> Tuple[str, int]:
        """``(host, port)`` of the HTTP exposition sidecar."""
        if self._exposition is None:
            raise RuntimeError("metrics sidecar is not running "
                               "(set ServeConfig.metrics_port)")
        return self._exposition.host, self._exposition.port

    @property
    def shadow(self) -> Optional[ShadowSampler]:
        """The accuracy sampler, or None when disabled (the default)."""
        return self._shadow

    @property
    def ledger(self) -> Optional[AccuracyLedger]:
        """The error-budget ledger, or None when no budget is set."""
        return self._ledger

    def _on_accuracy_sample(self, sketch: str, rel_error: float,
                            state: str, burn: float) -> None:
        """Ledger subscriber: route measured drift into the adaptive
        maintenance loop.  Runs on the shadow drain thread."""
        try:
            registered = self.registry.get(sketch)
        except KeyError:
            return
        if not isinstance(registered, LiveSketch):
            return
        if self._ledger is not None:
            self._ledger.note_debt(sketch, registered.maintainer.total_debt())
        epoch = registered.observe_error(rel_error)
        if epoch is not None and self._shadow is not None:
            # The controller re-merged: queued samples predate the new
            # snapshot and must not score against it.
            self._shadow.note_epoch(sketch, epoch)

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        server_kwargs: Dict[str, Any] = {}
        if self.config.reuse_port:
            server_kwargs["reuse_port"] = True
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
            **server_kwargs,
        )
        self._started_at = get_clock().now()
        if self.config.cache_checkpoint_s is not None \
                and self.config.cache_checkpoint_s > 0:
            self._checkpoint_task = asyncio.get_running_loop().create_task(
                self._checkpoint_loop())
        if self._shadow is not None:
            self._shadow.start()
        if self.config.metrics_port is not None:
            from repro.obs.expo import ExpositionServer

            self._exposition = ExpositionServer(
                snapshot_provider=lambda: get_metrics().snapshot(),
                status_provider=self.statusz,
                host=self.config.host,
                port=self.config.metrics_port,
            ).start()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    async def drain(self, timeout: float = 5.0) -> bool:
        """Wait for in-flight data-plane requests to finish (or time out).

        Graceful shutdown calls this after the listener is closed:
        admitted work keeps its slot until the worker actually completes,
        so a zero depth means the compute pipeline is empty.  Returns
        whether the drain completed inside ``timeout``.
        """
        clock = get_clock()
        deadline = clock.now() + timeout
        while self.admission.depth > 0:
            if clock.now() >= deadline:
                return False
            await asyncio.sleep(0.02)
        return True

    async def _checkpoint_loop(self) -> None:
        """Periodically persist query-cache sidecars (ServeConfig knob).

        The save runs on the worker pool -- sidecar writes are file I/O
        and must never stall the event loop.  One failed interval is
        logged via the ``store.cache.save_failed`` counter inside
        ``save_caches`` and the loop keeps going.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.cache_checkpoint_s)
            try:
                saved = await loop.run_in_executor(
                    self._executor, self.registry.save_caches)
            except RuntimeError:
                return  # executor shut down mid-checkpoint
            self.checkpoints += 1
            get_metrics().counter("serve.cache_checkpoints").inc()
            if saved:
                get_metrics().counter(
                    "serve.cache_checkpoint_sidecars").inc(saved)

    async def stop(self) -> None:
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            try:
                await self._checkpoint_task
            except asyncio.CancelledError:
                pass
            self._checkpoint_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._exposition is not None:
            self._exposition.stop()
            self._exposition = None
        if self._shadow is not None:
            self._shadow.stop()
        if self._executor is not None:
            # Abandoned post-deadline work may still be running; don't wait.
            self._executor.shutdown(wait=False)
            self._executor = None

    # ------------------------------------------------------------ connection

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        get_metrics().counter("serve.connections").inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.IncompleteReadError):
                    # Oversized line: the stream cannot be resynchronized.
                    writer.write(protocol.encode_message(protocol.error_response(
                        None, "bad_request", "request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                writer.write(await self._handle_line(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # event loop shutting down mid-connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes) -> bytes:
        metrics = get_metrics()
        metrics.counter("serve.requests").inc()
        clock = get_clock()
        start = clock.now()
        op: Optional[str] = None
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            request_id = uuid.uuid4().hex
            response: Dict[str, Any] = protocol.error_response(
                None, exc.code, exc.message)
            response["request_id"] = request_id
        else:
            # End-to-end correlation: a client-supplied request_id is
            # honored verbatim; otherwise the server mints one.  It is
            # echoed in the response and stamped on every span this
            # request records, so one id ties the wire exchange to the
            # server-side trace.
            request_id = request.get("request_id")
            if request_id is None:
                request_id = uuid.uuid4().hex
                request["request_id"] = request_id
            op = request["op"]
            metrics.counter(f"serve.requests.{op}").inc()
            try:
                response = await self._dispatch(request)
            except ProtocolError as exc:
                response = protocol.error_response(request, exc.code, exc.message)
            except Exception as exc:  # noqa: BLE001 - fail the request, not the server
                response = protocol.error_response(
                    request, "internal", f"{type(exc).__name__}: {exc}")
        # encode_response enforces MAX_LINE_BYTES (swapping in a
        # response_too_large error), so meter ok-ness on what went out.
        data, response = protocol.encode_response(response)
        ok = bool(response.get("ok"))
        if not ok:
            metrics.counter("serve.errors").inc()
        elapsed = clock.now() - start
        metrics.histogram("serve.request_seconds").observe(elapsed)
        if op is not None:
            metrics.windowed(
                f"serve.op.latency.{op}",
                window_s=self.config.latency_window_s,
            ).observe(elapsed)
        # record(), not span(): requests interleave on the event loop, so
        # the nesting stack would be corrupted -- correlation is by id.
        get_tracer().record(
            "serve.request", start, elapsed,
            op=op, request_id=request_id, ok=ok,
        )
        return data

    # -------------------------------------------------------------- dispatch

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        if op in protocol.SUPERVISOR_OPS:
            raise ProtocolError(
                "unknown_op",
                f"op {op!r} is answered by the supervisor control "
                "endpoint, not a serving worker (see docs/SERVING.md, "
                "'Scaling out')",
            )
        if op == "health":
            return protocol.ok_response(
                request,
                status="ok",
                protocol=protocol.PROTOCOL_VERSION,
                sketches=self.registry.names(),
                uptime_s=(get_clock().now() - self._started_at
                          if self._started_at is not None else 0.0),
            )
        if op == "list_sketches":
            return protocol.ok_response(
                request, sketches=self.registry.describe_all())
        if op == "stats":
            return protocol.ok_response(
                request,
                admission=self.admission.info(),
                sketches=self.registry.describe_all(),
                metrics=get_metrics().snapshot(),
                accuracy=(self._shadow.info()
                          if self._shadow is not None else None),
                budgets=(self._ledger.info()
                         if self._ledger is not None else None),
            )
        if op == "update":
            return await self._dispatch_update(request)
        return await self._dispatch_data(request)

    def statusz(self) -> Dict[str, Any]:
        """The ``/statusz`` document: one JSON page of operational state.

        Read-only and lock-free (admission/cache tallies fall back to
        GIL-atomic snapshots), so the exposition sidecar can call it from
        its own threads while the data plane is saturated.  This is what
        ``treesketch top`` renders.
        """
        snapshot = get_metrics().snapshot()
        latency = {
            op: {key: summary[key]
                 for key in ("count", "mean", "p50", "p95", "p99")}
            for op in sorted(protocol.DATA_OPS)
            for summary in [snapshot["histograms"].get(
                f"serve.op.latency.{op}")]
            if summary is not None
        }
        return {
            "uptime_s": (get_clock().now() - self._started_at
                         if self._started_at is not None else 0.0),
            "protocol": protocol.PROTOCOL_VERSION,
            "admission": self.admission.info(),
            "sketches": self.registry.describe_all(),
            "latency": latency,
            "accuracy": (self._shadow.info()
                         if self._shadow is not None else None),
            "budgets": (self._ledger.info()
                        if self._ledger is not None else None),
            "counters": {name: value
                         for name, value in snapshot["counters"].items()
                         if name.startswith(("serve.", "eval.cache."))},
        }

    async def _dispatch_update(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One sketch mutation: admission-controlled, never coalesced.

        Updates take an admission slot like data ops (a mutation is real
        compute: reconcile + possible re-merge + snapshot), run on the
        worker pool, and honour deadlines.  They skip the estimate
        batcher and the shadow sampler -- both are read-path machinery.
        Writes against one live sketch serialize on the entry's mutation
        lock, so concurrent updates are safe, just not parallel.
        """
        try:
            registered = self.registry.get(request.get("sketch"))
        except KeyError as exc:
            raise ProtocolError("unknown_sketch", exc.args[0])
        if not isinstance(registered, LiveSketch):
            raise ProtocolError(
                "immutable_sketch",
                f"sketch {registered.name!r} is frozen; updates need a "
                "live entry (serve a raw .xml with --live-budget-kb)",
            )
        decision = self.admission.acquire()
        if decision is Decision.SHED:
            raise ProtocolError(
                "overloaded",
                f"admission queue full ({self.admission.max_pending} pending); "
                "retry with backoff",
            )
        deadline_s = (
            float(request.get("deadline_ms",
                              self.config.default_deadline_ms)) / 1000.0
        )
        submitted: Optional[Future] = None
        try:
            async def _admitted() -> Dict[str, Any]:
                nonlocal submitted
                if self.config.handler_delay_s > 0:
                    await asyncio.sleep(self.config.handler_delay_s)
                submitted = self._executor.submit(
                    self._execute_update, request, registered)
                submitted.add_done_callback(
                    lambda _f: self.admission.release())
                return await asyncio.wrap_future(submitted)

            try:
                payload = await asyncio.wait_for(_admitted(),
                                                 timeout=deadline_s)
            except asyncio.TimeoutError:
                get_metrics().counter("serve.deadline_exceeded").inc()
                raise ProtocolError(
                    "deadline_exceeded",
                    f"update exceeded its {deadline_s * 1000:.0f} ms deadline "
                    "(the mutation may still apply; check the epoch)",
                )
            # Queued shadow samples were scored against the pre-mutation
            # sketch: advance the sampler's epoch so the drain thread
            # drops them as stale instead of reporting bogus drift.
            if self._shadow is not None:
                self._shadow.note_epoch(registered.name, payload["epoch"])
            if self._ledger is not None:
                self._ledger.note_debt(registered.name, payload["debt"])
            return protocol.ok_response(request, **payload)
        finally:
            if submitted is None:
                self.admission.release()

    def _execute_update(self, request: Dict[str, Any],
                        registered: "LiveSketch") -> Dict[str, Any]:
        """Apply one mutation on the worker pool; address errors -> wire codes."""
        clock = get_clock()
        started = clock.now()
        metrics = get_metrics()
        try:
            try:
                payload = registered.update(
                    request["action"],
                    parent_label=request.get("parent_label"),
                    parent_ordinal=int(request.get("parent_ordinal", 0)),
                    subtree=request.get("subtree"),
                    label=request.get("label"),
                    ordinal=int(request.get("ordinal", 0)),
                )
            except KeyError as exc:
                raise ProtocolError("bad_request", exc.args[0])
            except ValueError as exc:
                raise ProtocolError("bad_request", str(exc))
            metrics.counter("serve.updates").inc()
            return payload
        finally:
            get_tracer().record(
                "serve.execute", started, clock.now() - started,
                op="update", sketch=registered.name,
                request_id=request.get("request_id"),
            )

    async def _dispatch_data(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Resolve cheaply *before* taking an admission slot: a request for
        # a missing sketch or an unparsable twig is a client error, not load.
        try:
            registered = self.registry.get(request.get("sketch"))
        except KeyError as exc:
            raise ProtocolError("unknown_sketch", exc.args[0])
        try:
            query = parse_twig(request["query"])
        except Exception as exc:
            raise ProtocolError(
                "bad_query", f"cannot parse twig {request['query']!r}: {exc}")

        decision = self.admission.acquire()
        if decision is Decision.SHED:
            raise ProtocolError(
                "overloaded",
                f"admission queue full ({self.admission.max_pending} pending); "
                "retry with backoff",
            )
        degraded = decision is Decision.DEGRADE and request["op"] == "eval"
        deadline_s = (
            float(request.get("deadline_ms",
                              self.config.default_deadline_ms)) / 1000.0
        )
        work = partial(self._execute, request, registered, query, degraded)
        submitted: Optional[Future] = None
        coalesced: Optional[asyncio.Future] = None
        try:
            async def _admitted() -> Dict[str, Any]:
                nonlocal submitted, coalesced
                if self.config.handler_delay_s > 0:
                    await asyncio.sleep(self.config.handler_delay_s)
                # The admission slot travels with the computation: it is
                # returned by the done-callback when the worker actually
                # finishes, even if the deadline below abandons this
                # coroutine first.  Admission therefore bounds real
                # in-flight compute -- under sustained timeouts new
                # requests shed as `overloaded` instead of piling up
                # behind abandoned work in the executor queue.
                if self._batcher is not None and request["op"] == "estimate":
                    # Coalesced path: the batcher owns this request's
                    # admission slot from here on (released when the
                    # batch's executor job finishes).  shield() keeps a
                    # deadline from cancelling the future the batch job
                    # will settle from its own thread.
                    coalesced = self._batcher.enqueue(
                        registered, query, request)
                    return await asyncio.shield(coalesced)
                submitted = self._executor.submit(work)
                submitted.add_done_callback(
                    lambda _f: self.admission.release())
                return await asyncio.wrap_future(submitted)

            try:
                payload = await asyncio.wait_for(_admitted(), timeout=deadline_s)
            except asyncio.TimeoutError:
                get_metrics().counter("serve.deadline_exceeded").inc()
                raise ProtocolError(
                    "deadline_exceeded",
                    f"request exceeded its {deadline_s * 1000:.0f} ms deadline",
                )
            # Shadow accuracy sampling happens here, on the event loop,
            # *after* the answer is complete and outside the admission-
            # held critical section: offer() is an O(1) accumulator bump
            # plus a non-blocking enqueue; the reference evaluation runs
            # on the sampler's own thread, never a worker slot.
            if (self._shadow is not None
                    and request["op"] in ("estimate", "eval")
                    and not payload.get("degraded")):
                self._shadow.offer(registered.name, query,
                                   payload["selectivity"],
                                   epoch=registered.cache.epoch)
            return protocol.ok_response(request, **payload)
        finally:
            if submitted is None and coalesced is None:
                # Never reached the worker pool (nor a batch).
                self.admission.release()

    # --------------------------------------------------- worker-thread compute

    def _execute(self, request: Dict[str, Any], registered: RegisteredSketch,
                 query: TwigQuery, degraded: bool) -> Dict[str, Any]:
        """Pure sketch computation; runs on the worker pool."""
        clock = get_clock()
        started = clock.now()
        try:
            return self._compute(request, registered, query, degraded)
        finally:
            # Worker-side half of the request trace, correlated by
            # request_id (record() is stack-free, hence thread-safe here).
            get_tracer().record(
                "serve.execute", started, clock.now() - started,
                op=request["op"], sketch=registered.name,
                request_id=request.get("request_id"),
            )

    def _compute(self, request: Dict[str, Any], registered: RegisteredSketch,
                 query: TwigQuery, degraded: bool) -> Dict[str, Any]:
        op = request["op"]
        cache = registered.cache
        if op == "estimate":
            return {"sketch": registered.name,
                    "selectivity": cache.selectivity(query)}
        if op == "eval":
            if degraded:
                # Graceful degradation must shed compute, not just
                # response bytes: serve only an already-cached
                # selectivity; a miss (or cache-lock contention) answers
                # `overloaded` instead of running eval_query.
                selectivity = cache.peek_selectivity(query)
                if selectivity is None:
                    raise ProtocolError(
                        "overloaded",
                        "server is degraded and this query's selectivity "
                        "is not cached; retry with backoff",
                    )
                get_metrics().counter("serve.degraded").inc()
                return {
                    "sketch": registered.name,
                    "selectivity": selectivity,
                    "degraded": True,
                }
            result = cache.result(query)
            return {
                "sketch": registered.name,
                "selectivity": cache.selectivity(query),
                "degraded": False,
                "result": {
                    "nodes": result.num_nodes,
                    "edges": result.num_edges,
                    "empty": result.empty,
                },
                "bindings": estimate_bindings(result),
            }
        if op == "explain":
            # Error provenance (docs/OBSERVABILITY.md "Accuracy plane"):
            # the instrumented DP decomposes the estimate into per-cluster
            # contribution terms and ranks clusters by live error debt.
            result = cache.result(query)
            debt = (registered.maintainer.debt
                    if isinstance(registered, LiveSketch) else None)
            explanation = explain_estimate(
                result, debt=debt, top_k=int(request.get("top_k", 5)))
            get_metrics().counter("serve.explains").inc()
            payload = {"sketch": registered.name,
                       "epoch": registered.cache.epoch}
            payload.update(explanation.to_payload())
            if self._ledger is not None:
                payload["budget_state"] = self._ledger.state(registered.name)
                payload["burn_rate"] = self._ledger.burn_rate(registered.name)
            return payload
        if op == "expand":
            max_nodes = min(
                int(request.get("max_nodes", self.config.max_expand_nodes)),
                self.config.max_expand_nodes,
            )
            result = cache.result(query)
            try:
                nesting = expand_result(
                    result, max_nodes=max_nodes,
                    sketch=registered.sketch, seed=request.get("seed"),
                )
            except ExpansionLimitError:
                raise ProtocolError(
                    "expansion_limit",
                    f"approximate answer exceeds max_nodes={max_nodes}",
                )
            return {
                "sketch": registered.name,
                "elements": nesting.size(),
                "xml": to_xml(nesting.to_xmltree()),
            }
        raise ProtocolError("unknown_op", f"unhandled op {op!r}")  # unreachable

    # ------------------------------------------------------- batch coalescing

    def _release_slots(self, count: int) -> None:
        """Return ``count`` admission slots (one per coalesced request)."""
        for _ in range(count):
            self.admission.release()

    def _execute_batch(self, registered: RegisteredSketch,
                       queries: list, requests: list, futures: list,
                       loop: asyncio.AbstractEventLoop) -> None:
        """One coalesced estimate batch; runs on the worker pool.

        The whole batch is answered by a single
        :meth:`repro.core.qcache.QueryCache.selectivity_batch` call --
        bitwise-equal to per-query scalar estimates by construction.  A
        failure of the batch call falls back to per-query scalar
        estimation so one poisoned query cannot fail its neighbours.
        """
        metrics = get_metrics()
        clock = get_clock()
        started = clock.now()
        metrics.counter("serve.batch.flushes").inc()
        metrics.counter("serve.batch.coalesced").inc(len(queries))
        metrics.histogram("serve.batch.size").observe(len(queries))
        outcomes: list = []
        try:
            values = registered.cache.selectivity_batch(queries)
            outcomes = [
                (None, {"sketch": registered.name, "selectivity": value})
                for value in values
            ]
        except Exception:  # noqa: BLE001 - isolate failures per query
            for query in queries:
                try:
                    outcomes.append((None, {
                        "sketch": registered.name,
                        "selectivity": registered.cache.selectivity(query),
                    }))
                except Exception as exc:  # noqa: BLE001
                    outcomes.append((exc, None))
        finally:
            tracer = get_tracer()
            finished = clock.now()
            tracer.record(
                "serve.execute_batch", started, finished - started,
                op="estimate", sketch=registered.name, batch=len(queries),
            )
            # Each member still gets its correlated `serve.execute` span
            # (same contract as the scalar path); its duration is the
            # batch's, since members are answered by one fused call.
            for request in requests:
                tracer.record(
                    "serve.execute", started, finished - started,
                    op="estimate", sketch=registered.name,
                    request_id=request.get("request_id"),
                )
            # Slots come back *before* the futures settle so that by the
            # time any client reads its response the admission depth no
            # longer counts this batch (the scalar path orders its
            # release callback ahead of wrap_future the same way).
            self._release_slots(len(futures))
        for future, (exc, payload) in zip(futures, outcomes):
            loop.call_soon_threadsafe(_settle_future, future, exc, payload)


def _settle_future(future: "asyncio.Future", exc: Optional[BaseException],
                   payload: Optional[Dict[str, Any]]) -> None:
    """Resolve one coalesced request's future on the event loop.

    The awaiting coroutine may already have been abandoned by its
    deadline (the future is shielded, so it is settled, not cancelled);
    reading ``exception()`` right back marks a then-unobserved error as
    retrieved so abandoned batch members never log spurious tracebacks.
    """
    if future.cancelled():
        return
    if exc is not None:
        future.set_exception(exc)
        future.exception()
    else:
        future.set_result(payload)


class _EstimateBatcher:
    """Event-loop-side coalescing of concurrent estimate requests.

    All state lives on the server's event loop (no locks): ``enqueue``
    appends the request to its sketch's pending batch and arms a flush --
    immediately (next loop tick) with a zero window, else after
    ``coalesce_window_s`` -- or flushes early when ``coalesce_max`` is
    reached.  A flush submits ONE executor job for the whole batch, which
    releases one admission slot per member when it completes, preserving
    the invariant that admission depth counts real in-flight compute.
    """

    def __init__(self, server: SketchServer) -> None:
        self._server = server
        self._pending: Dict[str, list] = {}
        self._timers: Dict[str, object] = {}

    def enqueue(self, registered: RegisteredSketch, query: TwigQuery,
                request: Dict[str, Any]) -> "asyncio.Future":
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        items = self._pending.setdefault(registered.name, [])
        items.append((query, request, future))
        if len(items) >= self._server.config.coalesce_max:
            self._cancel_timer(registered.name)
            self._flush(registered)
        elif len(items) == 1:
            window = self._server.config.coalesce_window_s
            if window > 0:
                handle = loop.call_later(window, self._flush, registered)
            else:
                handle = loop.call_soon(self._flush, registered)
            self._timers[registered.name] = handle
        return future

    def _cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def _flush(self, registered: RegisteredSketch) -> None:
        self._timers.pop(registered.name, None)
        items = self._pending.pop(registered.name, None)
        if not items:
            return
        loop = asyncio.get_running_loop()
        server = self._server
        try:
            # _execute_batch releases the batch's admission slots itself
            # (before settling the futures), so no done-callback here.
            server._executor.submit(
                server._execute_batch, registered,
                [query for query, _, _ in items],
                [request for _, request, _ in items],
                [future for _, _, future in items], loop)
        except Exception as exc:  # noqa: BLE001 - e.g. executor shut down
            server._release_slots(len(items))
            for _, _, future in items:
                _settle_future(future, exc, None)


# ---------------------------------------------------------------- threading


class ServerHandle:
    """A :class:`SketchServer` running on a dedicated event-loop thread.

    ``start()`` blocks until the socket is bound (so ``port`` is real) or
    startup failed (the failure is re-raised in the caller's thread).
    Used by the test suite and anywhere a blocking program wants a live
    server -- production deployments run ``treesketch serve`` instead.
    """

    def __init__(self, registry: SketchRegistry,
                 config: Optional[ServeConfig] = None) -> None:
        self._registry = registry
        self._config = config
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.metrics_host: Optional[str] = None
        self.metrics_port: Optional[int] = None

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        server = SketchServer(self._registry, self._config)
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - report to start()
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self.host, self.port = server.address
        if server._exposition is not None:
            self.metrics_host, self.metrics_port = server.metrics_address
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)


def start_server_thread(registry: SketchRegistry,
                        config: Optional[ServeConfig] = None) -> ServerHandle:
    """Start a server on a background thread; returns the bound handle."""
    return ServerHandle(registry, config).start()
