"""The asyncio TCP daemon serving approximate XML query answers.

Design, in one paragraph: the event loop owns all I/O and all
bookkeeping (admission, metrics, deadlines); sketch computation --
``eval_query`` / ``estimate_selectivity`` / ``expand_result`` through the
per-sketch :class:`~repro.core.qcache.QueryCache` -- runs on a small
thread pool so a slow query can never stall the control plane (``health``
keeps answering while the workers grind).  Every data-plane request
passes the :class:`~repro.serve.admission.AdmissionController`: beyond
``max_pending`` it is shed with a structured ``overloaded`` error, above
the ``degrade_watermark`` an ``eval`` is answered from the query cache
only (selectivity with ``degraded: true``, or ``overloaded`` on a cache
miss -- degradation must shed compute, not just response bytes), and
each admitted request runs under a deadline (``deadline_ms`` in the
request, else the server default) that maps to a ``deadline_exceeded``
error when it fires.  A deadline abandons the response, not the slot:
the admission slot is returned only when the worker actually finishes,
so admission always bounds real in-flight compute and sustained
timeouts surface as ``overloaded`` instead of an unbounded executor
queue.  Responses are capped at ``protocol.MAX_LINE_BYTES`` like
requests; an oversized one is replaced by a structured
``response_too_large`` error so the client's line framing never
desynchronizes.  The full protocol is specified in docs/SERVING.md.

Embedding (what the tests and the CLI do)::

    registry = SketchRegistry()
    registry.load("xmark.json.gz")
    handle = start_server_thread(registry, ServeConfig(port=0))
    try:
        ...  # talk to ("127.0.0.1", handle.port) with repro.serve.client
    finally:
        handle.stop()
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Optional, Tuple

from repro.core.estimate import estimate_bindings
from repro.core.expand import ExpansionLimitError, expand_result
from repro.obs import get_clock, get_metrics
from repro.query.parser import parse_twig
from repro.query.twig import TwigQuery
from repro.serve import protocol
from repro.serve.admission import AdmissionController, Decision
from repro.serve.protocol import ProtocolError
from repro.serve.registry import RegisteredSketch, SketchRegistry
from repro.xmltree.serialize import to_xml


@dataclass
class ServeConfig:
    """Tunables for one :class:`SketchServer` instance.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.address`` after ``start()``).  ``workers`` sizes the
    compute thread pool -- 1 is right for a single-core host and keeps
    sketch computation fully serialized.  ``handler_delay_s`` is a
    test/debug knob: it delays each admitted data-plane request while
    holding its admission slot, which makes queue-pressure scenarios
    (shedding, degradation, deadlines) reproducible.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 64
    degrade_watermark: Optional[int] = None
    default_deadline_ms: float = 10_000.0
    max_expand_nodes: int = 200_000
    workers: int = 1
    handler_delay_s: float = 0.0


class SketchServer:
    """Line-delimited JSON query server over a :class:`SketchRegistry`."""

    def __init__(self, registry: SketchRegistry,
                 config: Optional[ServeConfig] = None) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            degrade_watermark=self.config.degrade_watermark,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._started_at = get_clock().now()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            # Abandoned post-deadline work may still be running; don't wait.
            self._executor.shutdown(wait=False)
            self._executor = None

    # ------------------------------------------------------------ connection

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        get_metrics().counter("serve.connections").inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.IncompleteReadError):
                    # Oversized line: the stream cannot be resynchronized.
                    writer.write(protocol.encode_message(protocol.error_response(
                        None, "bad_request", "request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                writer.write(await self._handle_line(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # event loop shutting down mid-connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _handle_line(self, line: bytes) -> bytes:
        metrics = get_metrics()
        metrics.counter("serve.requests").inc()
        clock = get_clock()
        start = clock.now()
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            response: Dict[str, Any] = protocol.error_response(
                None, exc.code, exc.message)
        else:
            metrics.counter(f"serve.requests.{request['op']}").inc()
            try:
                response = await self._dispatch(request)
            except ProtocolError as exc:
                response = protocol.error_response(request, exc.code, exc.message)
            except Exception as exc:  # noqa: BLE001 - fail the request, not the server
                response = protocol.error_response(
                    request, "internal", f"{type(exc).__name__}: {exc}")
        # encode_response enforces MAX_LINE_BYTES (swapping in a
        # response_too_large error), so meter ok-ness on what went out.
        data, response = protocol.encode_response(response)
        if not response.get("ok"):
            metrics.counter("serve.errors").inc()
        metrics.histogram("serve.request_seconds").observe(clock.now() - start)
        return data

    # -------------------------------------------------------------- dispatch

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        if op == "health":
            return protocol.ok_response(
                request,
                status="ok",
                protocol=protocol.PROTOCOL_VERSION,
                sketches=self.registry.names(),
                uptime_s=(get_clock().now() - self._started_at
                          if self._started_at is not None else 0.0),
            )
        if op == "list_sketches":
            return protocol.ok_response(
                request, sketches=self.registry.describe_all())
        if op == "stats":
            return protocol.ok_response(
                request,
                admission=self.admission.info(),
                sketches=self.registry.describe_all(),
                metrics=get_metrics().snapshot(),
            )
        return await self._dispatch_data(request)

    async def _dispatch_data(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Resolve cheaply *before* taking an admission slot: a request for
        # a missing sketch or an unparsable twig is a client error, not load.
        try:
            registered = self.registry.get(request.get("sketch"))
        except KeyError as exc:
            raise ProtocolError("unknown_sketch", exc.args[0])
        try:
            query = parse_twig(request["query"])
        except Exception as exc:
            raise ProtocolError(
                "bad_query", f"cannot parse twig {request['query']!r}: {exc}")

        decision = self.admission.acquire()
        if decision is Decision.SHED:
            raise ProtocolError(
                "overloaded",
                f"admission queue full ({self.admission.max_pending} pending); "
                "retry with backoff",
            )
        degraded = decision is Decision.DEGRADE and request["op"] == "eval"
        deadline_s = (
            float(request.get("deadline_ms",
                              self.config.default_deadline_ms)) / 1000.0
        )
        work = partial(self._execute, request, registered, query, degraded)
        submitted: Optional[Future] = None
        try:
            async def _admitted() -> Dict[str, Any]:
                nonlocal submitted
                if self.config.handler_delay_s > 0:
                    await asyncio.sleep(self.config.handler_delay_s)
                # The admission slot travels with the computation: it is
                # returned by the done-callback when the worker actually
                # finishes, even if the deadline below abandons this
                # coroutine first.  Admission therefore bounds real
                # in-flight compute -- under sustained timeouts new
                # requests shed as `overloaded` instead of piling up
                # behind abandoned work in the executor queue.
                submitted = self._executor.submit(work)
                submitted.add_done_callback(
                    lambda _f: self.admission.release())
                return await asyncio.wrap_future(submitted)

            try:
                payload = await asyncio.wait_for(_admitted(), timeout=deadline_s)
            except asyncio.TimeoutError:
                get_metrics().counter("serve.deadline_exceeded").inc()
                raise ProtocolError(
                    "deadline_exceeded",
                    f"request exceeded its {deadline_s * 1000:.0f} ms deadline",
                )
            return protocol.ok_response(request, **payload)
        finally:
            if submitted is None:  # never reached the worker pool
                self.admission.release()

    # --------------------------------------------------- worker-thread compute

    def _execute(self, request: Dict[str, Any], registered: RegisteredSketch,
                 query: TwigQuery, degraded: bool) -> Dict[str, Any]:
        """Pure sketch computation; runs on the worker pool."""
        op = request["op"]
        cache = registered.cache
        if op == "estimate":
            return {"sketch": registered.name,
                    "selectivity": cache.selectivity(query)}
        if op == "eval":
            if degraded:
                # Graceful degradation must shed compute, not just
                # response bytes: serve only an already-cached
                # selectivity; a miss (or cache-lock contention) answers
                # `overloaded` instead of running eval_query.
                selectivity = cache.peek_selectivity(query)
                if selectivity is None:
                    raise ProtocolError(
                        "overloaded",
                        "server is degraded and this query's selectivity "
                        "is not cached; retry with backoff",
                    )
                get_metrics().counter("serve.degraded").inc()
                return {
                    "sketch": registered.name,
                    "selectivity": selectivity,
                    "degraded": True,
                }
            result = cache.result(query)
            return {
                "sketch": registered.name,
                "selectivity": cache.selectivity(query),
                "degraded": False,
                "result": {
                    "nodes": result.num_nodes,
                    "edges": result.num_edges,
                    "empty": result.empty,
                },
                "bindings": estimate_bindings(result),
            }
        if op == "expand":
            max_nodes = min(
                int(request.get("max_nodes", self.config.max_expand_nodes)),
                self.config.max_expand_nodes,
            )
            result = cache.result(query)
            try:
                nesting = expand_result(
                    result, max_nodes=max_nodes,
                    sketch=registered.sketch, seed=request.get("seed"),
                )
            except ExpansionLimitError:
                raise ProtocolError(
                    "expansion_limit",
                    f"approximate answer exceeds max_nodes={max_nodes}",
                )
            return {
                "sketch": registered.name,
                "elements": nesting.size(),
                "xml": to_xml(nesting.to_xmltree()),
            }
        raise ProtocolError("unknown_op", f"unhandled op {op!r}")  # unreachable


# ---------------------------------------------------------------- threading


class ServerHandle:
    """A :class:`SketchServer` running on a dedicated event-loop thread.

    ``start()`` blocks until the socket is bound (so ``port`` is real) or
    startup failed (the failure is re-raised in the caller's thread).
    Used by the test suite and anywhere a blocking program wants a live
    server -- production deployments run ``treesketch serve`` instead.
    """

    def __init__(self, registry: SketchRegistry,
                 config: Optional[ServeConfig] = None) -> None:
        self._registry = registry
        self._config = config
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        server = SketchServer(self._registry, self._config)
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - report to start()
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self.host, self.port = server.address
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)


def start_server_thread(registry: SketchRegistry,
                        config: Optional[ServeConfig] = None) -> ServerHandle:
    """Start a server on a background thread; returns the bound handle."""
    return ServerHandle(registry, config).start()
