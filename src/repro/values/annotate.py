"""Attaching value summaries to synopses.

Stable-summary annotation is exact: every class's extent is known, so its
value multiset is summarized directly.  TreeSketch annotation reuses the
stable-level summaries: a compressed sketch records which stable classes
each cluster absorbed (``TreeSketch.members``), and cluster summaries are
merges of the member class summaries -- no base-data access after the
stable pass, mirroring how the structural statistics work.
"""

from __future__ import annotations

from typing import Dict

from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch
from repro.values.summary import ValueSummary
from repro.xmltree.tree import XMLTree


def annotate_stable_values(
    stable: StableSummary, tree: XMLTree, top_k: int = 8
) -> Dict[int, ValueSummary]:
    """Per-class value summaries for a stable summary (exact).

    Requires the summary to have been built with ``keep_extents=True``
    over a tree parsed with ``keep_values=True``.  Only classes with at
    least one valued element receive a summary.  The result is also
    stored on ``stable.values``.
    """
    if stable.extent is None:
        raise ValueError("annotate_stable_values needs keep_extents=True")
    summaries: Dict[int, ValueSummary] = {}
    for nid, oids in stable.extent.items():
        values = [tree.node(oid).value for oid in oids]
        if any(v is not None for v in values):
            summaries[nid] = ValueSummary.from_values(values, top_k)
    stable.values = summaries  # type: ignore[attr-defined]
    return summaries


def annotate_sketch_values(
    sketch: TreeSketch,
    stable_summaries: Dict[int, ValueSummary],
    top_k: int = 8,
) -> Dict[int, ValueSummary]:
    """Value summaries for a (possibly compressed) TreeSketch.

    ``stable_summaries`` is the output of :func:`annotate_stable_values`
    on the sketch's originating stable summary.  Stored on
    ``sketch.values`` and consumed by ``TreeSketch.value_probability``.
    """
    if not sketch.members:
        raise ValueError(
            "sketch carries no member map; build it via TreeSketchBuilder "
            "or TreeSketch.from_stable"
        )
    summaries: Dict[int, ValueSummary] = {}
    for cid, member_classes in sketch.members.items():
        merged: ValueSummary | None = None
        covered = 0
        for stable_id in member_classes:
            part = stable_summaries.get(stable_id)
            if part is None:
                continue
            covered += part.total
            merged = part if merged is None else merged.merge(part, top_k)
        if merged is None:
            continue
        # Elements of member classes without any valued element count as
        # nulls so probabilities stay relative to the full extent.
        missing = sketch.count[cid] - merged.total
        if missing > 0:
            merged = ValueSummary(
                top=dict(merged.top),
                rest_count=merged.rest_count,
                rest_distinct=merged.rest_distinct,
                null_count=merged.null_count + missing,
            )
        summaries[cid] = merged
    sketch.values = summaries
    return summaries


def values_size_bytes(summaries: Dict[int, ValueSummary]) -> int:
    """Extra storage the value annotation costs (reported separately)."""
    return sum(summary.size_bytes() for summary in summaries.values())
