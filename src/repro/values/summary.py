"""Per-class value summaries: exact heavy hitters + uniform tail."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


@dataclass
class ValueSummary:
    """Distribution of leaf values over one synopsis node's extent.

    ``top`` holds exact counts for the most frequent values; the remaining
    ``rest_count`` occurrences spread over ``rest_distinct`` unseen values
    (estimated uniformly); ``null_count`` elements carry no value at all.
    """

    top: Dict[str, int] = field(default_factory=dict)
    rest_count: int = 0
    rest_distinct: int = 0
    null_count: int = 0

    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        """All elements in the extent (with or without a value)."""
        return sum(self.top.values()) + self.rest_count + self.null_count

    @property
    def distinct_estimate(self) -> int:
        return len(self.top) + self.rest_distinct

    @classmethod
    def from_values(
        cls, values: Iterable[Optional[str]], top_k: int = 8
    ) -> "ValueSummary":
        """Summarize raw per-element values (``None`` = element w/o value)."""
        counter: Counter = Counter()
        nulls = 0
        for value in values:
            if value is None:
                nulls += 1
            else:
                counter[value] += 1
        ranked = counter.most_common()
        top = dict(ranked[:top_k])
        rest = ranked[top_k:]
        return cls(
            top=top,
            rest_count=sum(c for _v, c in rest),
            rest_distinct=len(rest),
            null_count=nulls,
        )

    # ------------------------------------------------------------------

    def probability(self, value: str) -> float:
        """``P(element's value == value)`` over the whole extent.

        Exact for retained heavy hitters; the tail answers with the
        uniform-over-unseen-values assumption (standard in selectivity
        estimation); zero when there is no tail and no match.
        """
        total = self.total
        if not total:
            return 0.0
        if value in self.top:
            return self.top[value] / total
        if self.rest_distinct:
            return (self.rest_count / self.rest_distinct) / total
        return 0.0

    def merge(self, other: "ValueSummary", top_k: int = 8) -> "ValueSummary":
        """Summary of the union of two extents (cap re-applied).

        Exact for values retained on both sides; tails add (their unseen
        value sets are assumed disjoint, a documented approximation).
        """
        combined: Counter = Counter(self.top)
        combined.update(other.top)
        ranked = combined.most_common()
        top = dict(ranked[:top_k])
        demoted = ranked[top_k:]
        return ValueSummary(
            top=top,
            rest_count=self.rest_count + other.rest_count + sum(c for _v, c in demoted),
            rest_distinct=self.rest_distinct + other.rest_distinct + len(demoted),
            null_count=self.null_count + other.null_count,
        )

    def size_bytes(self) -> int:
        """8 bytes per retained value (hash + count) + 12 bytes of tail."""
        return 8 * len(self.top) + 12

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ValueSummary(top={len(self.top)}, rest={self.rest_count}/"
            f"{self.rest_distinct}, nulls={self.null_count})"
        )
