"""Value extension: structure *and* value summarization.

The paper restricts itself to the label structure of documents and names
value content as future work (Sections 1 and 7; the XSKETCH-value line of
work [16] is the template).  This package adds the minimum machinery to
answer twig queries with **value-equality predicates** ``[path = "v"]``
approximately:

* :mod:`repro.values.summary` -- per-synopsis-node value summaries:
  top-k most frequent values exact, remainder under a uniform assumption;
* :mod:`repro.values.annotate` -- attach value summaries to a stable
  summary or TreeSketch from a value-carrying document (parse with
  ``parse_xml(text, keep_values=True)``);
* the evaluator hook ``TreeSketch.value_probability`` consumed by
  EVALQUERY's branch-selectivity logic.

Estimation model for ``[p = "v"]`` at synopsis node ``u``: for each
terminal ``t`` of ``p``'s embeddings with expected count ``k_t`` and value
probability ``p_t = P(value = v | element of t)``, an element fails the
predicate along ``t`` with probability ``(1 - p_t)**k_t`` (``1 - k_t p_t``
for fractional ``k_t < 1``); the per-terminal misses multiply (the same
edge-independence reading as the structural inclusion-exclusion).
"""

from repro.values.summary import ValueSummary
from repro.values.annotate import annotate_stable_values, annotate_sketch_values

__all__ = ["ValueSummary", "annotate_stable_values", "annotate_sketch_values"]
