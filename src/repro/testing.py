"""Public test helpers: random documents, equality checks.

These utilities back the library's own test suite and are exported for
downstream users who need to property-test code built on top of the
synopses (generating random documents, checking tree isomorphism, or
comparing summaries up to class renaming).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def make_random_tree(
    rng: random.Random,
    size: int,
    labels: str = "abcdef",
    root_label: str = "r",
) -> XMLTree:
    """Uniform random-attachment tree with random labels.

    Every new node picks a uniformly random existing node as its parent,
    which yields realistic depth/fan-out variety (a few deep spindly
    branches, a few high-fan-out hubs).
    """
    root = XMLNode(root_label)
    nodes = [root]
    for _ in range(size):
        parent = rng.choice(nodes)
        nodes.append(parent.new_child(rng.choice(labels)))
    return XMLTree(root)


def canonical_form(node: XMLNode):
    """Order-insensitive canonical form of a sub-tree.

    Two sub-trees have equal canonical forms iff they are isomorphic up
    to sibling order (the notion of equality the paper's data model
    implies -- sibling order carries no semantics).
    """
    return (node.label, tuple(sorted(canonical_form(c) for c in node.children)))


def trees_isomorphic(left: XMLTree, right: XMLTree) -> bool:
    """Isomorphism up to sibling order."""
    if len(left) != len(right):
        return False
    return canonical_form(left.root) == canonical_form(right.root)


def summaries_equivalent(a, b) -> bool:
    """Structural equality of two stable summaries up to class renaming.

    Canonicalizes each class bottom-up (label + sorted canonical child
    forms with counts); injective on count-stable summaries.
    """

    def canonical(summary):
        order = summary.topological_order()
        if order is None:
            raise ValueError("stable summaries must be acyclic")
        form = {}
        for nid in reversed(order):
            children = tuple(sorted(
                (form[c], int(k)) for c, k in summary.out.get(nid, {}).items()
            ))
            form[nid] = (summary.label[nid], children)
        return sorted((form[nid], summary.count[nid]) for nid in summary.label)

    return canonical(a) == canonical(b)


def assert_valid_synopsis(synopsis, expect_elements: Optional[int] = None) -> None:
    """Raise AssertionError unless the synopsis is internally consistent.

    Runs the synopsis' own ``validate`` plus, when given, a check that the
    extent sizes cover ``expect_elements`` document elements.
    """
    synopsis.validate()
    if expect_elements is not None:
        total = sum(synopsis.count.values())
        assert total == expect_elements, (
            f"extent sizes cover {total} elements, expected {expect_elements}"
        )
