"""TreeSketch: approximate XML query answers.

A from-scratch reproduction of *"Approximate XML Query Answers"*
(N. Polyzotis, M. Garofalakis, Y. Ioannidis; SIGMOD 2004).

The library summarizes a node-labeled XML document into a compact
**TreeSketch** synopsis -- a clustering of elements with similar sub-tree
structure -- and answers twig queries *approximately* over the synopsis:
fast tree-structured previews of the real answer plus accurate selectivity
estimates.  It also ships the paper's full experimental apparatus: the
count-stable summary, the TSBUILD compression algorithm, the
EVALQUERY/EVALEMBED approximate evaluator, the Element Simulation Distance
(ESD) quality metric, the twig-XSketch baseline, synthetic data sets, and
benchmark harnesses regenerating every table and figure.

Quickstart::

    from repro import (
        XMLTree, parse_twig, build_stable, build_treesketch,
        eval_query, expand_result, estimate_selectivity, ExactEvaluator,
    )

    tree = ...                                    # an XMLTree
    sketch = build_treesketch(tree, budget_bytes=10 * 1024)
    query = parse_twig("//a[//b] ( //p ( //k ? ), //n ? )")

    result = eval_query(sketch, query)            # approximate evaluation
    preview = expand_result(result)               # approximate nesting tree
    estimate = estimate_selectivity(result)       # approximate selectivity

    truth = ExactEvaluator(tree).evaluate(query)  # ground truth
"""

from repro.xmltree import (
    XMLNode,
    XMLTree,
    parse_xml,
    parse_compact,
    to_xml,
    to_compact,
)
from repro.query import Path, PathStep, Axis, TwigQuery, parse_path, parse_twig
from repro.query.generator import (
    WorkloadOptions,
    generate_workload,
    generate_negative_workload,
)
from repro.workload import make_workload
from repro.engine import ExactEvaluator, NestingTree, NTNode
from repro.core.io import save_synopsis, load_synopsis
from repro.core import (
    StableSummary,
    build_stable,
    expand_stable,
    TreeSketch,
    TSBuildOptions,
    build_treesketch,
    compress_to_budgets,
    ResultSketch,
    eval_query,
    estimate_selectivity,
    expand_result,
)

__version__ = "1.0.0"

__all__ = [
    "XMLNode",
    "XMLTree",
    "parse_xml",
    "parse_compact",
    "to_xml",
    "to_compact",
    "Path",
    "PathStep",
    "Axis",
    "TwigQuery",
    "parse_path",
    "parse_twig",
    "ExactEvaluator",
    "NestingTree",
    "NTNode",
    "StableSummary",
    "build_stable",
    "expand_stable",
    "TreeSketch",
    "TSBuildOptions",
    "build_treesketch",
    "compress_to_budgets",
    "ResultSketch",
    "eval_query",
    "estimate_selectivity",
    "expand_result",
    "WorkloadOptions",
    "generate_workload",
    "generate_negative_workload",
    "make_workload",
    "save_synopsis",
    "load_synopsis",
    "__version__",
]
