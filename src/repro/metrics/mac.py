"""Match-And-Compare (MAC) style distance between weighted multisets.

The ESD metric reduces tree comparison to comparing, per child tag, two
multisets of "values" (sub-tree equivalence classes) whose pairwise
distances come from the recursive ESD.  Following the MAC idea of
Ioannidis & Poosala [VLDB'99], the distance between two multisets matches
elements across the sets and charges (a) the pairwise distance for matched
mass and (b) a penalty for residual (unmatched) mass.

The original MAC implementation is not publicly available (the paper used
"a slightly revised version kindly provided" by its authors); this module
implements the published idea with two documented choices:

* matching is greedy on ascending pairwise distance (exact optimal
  transport adds cost without changing the relative comparisons the
  experiments need);
* residual mass of a value ``v`` is charged ``magnitude(v) *
  penalty(residual)`` where the frequency penalty is *superlinear* by
  default (triangular: ``r * (r + 1) / 2``).  A superlinear penalty is what
  makes the metric prefer answers that preserve sibling-count correlations
  -- the paper's Fig. 10 discussion: the answer with counts (6, 2)/(2, 6)
  must score closer to the truth (4, 1)/(1, 4) than the decorrelated
  (1, 1)/(4, 4), which a linear penalty ties.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

Value = Hashable
Weighted = Sequence[Tuple[Value, int]]


class FrequencyPenalty(enum.Enum):
    """Penalty growth for residual multiplicity ``r`` of one value."""

    LINEAR = "linear"          # r
    TRIANGULAR = "triangular"  # r (r + 1) / 2  (default)
    QUADRATIC = "quadratic"    # r**2

    def __call__(self, residual: float) -> float:
        if self is FrequencyPenalty.LINEAR:
            return residual
        if self is FrequencyPenalty.TRIANGULAR:
            return residual * (residual + 1.0) / 2.0
        return residual * residual


def mac_distance(
    left: Weighted,
    right: Weighted,
    dist_fn: Callable[[Value, Value], float],
    magnitude_fn: Callable[[Value], float],
    penalty: FrequencyPenalty = FrequencyPenalty.TRIANGULAR,
    exact: bool = False,
    exact_limit: int = 24,
    tiebreak_fn: Callable[[Value], str] = repr,
) -> float:
    """MAC-style distance between two weighted multisets.

    ``left`` / ``right`` are sequences of ``(value, multiplicity)`` with
    positive multiplicities.  ``dist_fn`` gives pairwise value distances
    (0 means identical); ``magnitude_fn`` gives the size charged for
    unmatched copies of a value.  Symmetric by construction.

    With ``exact=True`` (and total expanded size <= ``exact_limit`` per
    side, and scipy available) the cross-value matching is solved
    optimally with the Hungarian algorithm instead of greedily; unmatched
    units are charged through the same frequency penalty.  The greedy
    matching is the default: it is deterministic, dependency-free, and --
    as `tests/test_metrics_mac.py::TestExactMode` checks -- rarely differs
    on the child multisets ESD actually compares.
    """
    remaining_l: Dict[Value, float] = {}
    for value, mult in left:
        remaining_l[value] = remaining_l.get(value, 0.0) + mult
    remaining_r: Dict[Value, float] = {}
    for value, mult in right:
        remaining_r[value] = remaining_r.get(value, 0.0) + mult

    # Identical values match first at distance zero.
    for value in list(remaining_l):
        if value in remaining_r:
            flow = min(remaining_l[value], remaining_r[value])
            _consume(remaining_l, value, flow)
            _consume(remaining_r, value, flow)

    total = 0.0
    if remaining_l and remaining_r:
        if exact and _expandable(remaining_l, remaining_r, exact_limit):
            matched = _hungarian_match(remaining_l, remaining_r, dist_fn)
            if matched is not None:
                total += matched
            else:
                total += _greedy_match(remaining_l, remaining_r, dist_fn, tiebreak_fn)
        else:
            total += _greedy_match(remaining_l, remaining_r, dist_fn, tiebreak_fn)

    for residue in (remaining_l, remaining_r):
        for value, mult in residue.items():
            total += magnitude_fn(value) * penalty(mult)
    return total


def _greedy_match(remaining_l, remaining_r, dist_fn, tiebreak_fn=repr) -> float:
    """Cheapest-pairs-first flow; mutates the remaining pools."""
    total = 0.0
    pairs: List[Tuple[float, Value, Value]] = [
        (dist_fn(lv, rv), lv, rv)
        for lv in remaining_l
        for rv in remaining_r
    ]
    # Deterministic, *side-symmetric* tie-break: sorting on the unordered
    # pair of tie-break keys keeps the greedy matching identical when the
    # arguments are swapped (after the same-value pass, a value survives
    # on at most one side, so the unordered key is unambiguous).  Callers
    # whose values are interning-order ids must supply an *intrinsic*
    # tiebreak_fn (ESD passes structural fingerprints), or the matching
    # would depend on which side was interned first.
    pairs.sort(key=lambda p: (p[0], *sorted((tiebreak_fn(p[1]), tiebreak_fn(p[2])))))
    for dist, lv, rv in pairs:
        have_l = remaining_l.get(lv, 0.0)
        have_r = remaining_r.get(rv, 0.0)
        if not have_l or not have_r:
            continue
        flow = min(have_l, have_r)
        total += flow * dist
        _consume(remaining_l, lv, flow)
        _consume(remaining_r, rv, flow)
        if not remaining_l or not remaining_r:
            break
    return total


def _expandable(remaining_l, remaining_r, limit: int) -> bool:
    def integral_total(pool) -> int:
        total = 0
        for mult in pool.values():
            if abs(mult - round(mult)) > 1e-9:
                return limit + 1  # fractional flow: not expandable
            total += int(round(mult))
        return total

    return integral_total(remaining_l) <= limit and integral_total(remaining_r) <= limit


def _hungarian_match(remaining_l, remaining_r, dist_fn):
    """Optimal unit matching via scipy; None if scipy is unavailable.

    Expands multiplicities into units and pads the rectangular cost matrix
    with zero-cost rows/columns (padded units stay in the pools and fall
    through to the residual penalty, as in the greedy path).
    """
    try:
        from scipy.optimize import linear_sum_assignment
    except ImportError:  # pragma: no cover - scipy is a dev dependency
        return None

    units_l = [v for v, m in remaining_l.items() for _ in range(int(round(m)))]
    units_r = [v for v, m in remaining_r.items() for _ in range(int(round(m)))]
    real = [
        [dist_fn(lv, rv) for rv in units_r]
        for lv in units_l
    ]
    finite = [c for row in real for c in row if c != float("inf")]
    big = (max(finite) if finite else 1.0) + 1.0
    # Padding must be *more* expensive than any real pairing so the
    # optimizer, like the greedy matcher, matches min(|L|, |R|) units and
    # only structurally-excess units fall through to the residual penalty.
    n = max(len(units_l), len(units_r))
    cost = [[big] * n for _ in range(n)]
    for i in range(len(units_l)):
        for j in range(len(units_r)):
            value = real[i][j]
            cost[i][j] = value if value != float("inf") else big * 2

    rows, cols = linear_sum_assignment(cost)
    total = 0.0
    for i, j in zip(rows, cols):
        if i < len(units_l) and j < len(units_r):
            total += real[i][j] if real[i][j] != float("inf") else big * 2
            _consume(remaining_l, units_l[i], 1.0)
            _consume(remaining_r, units_r[j], 1.0)
    return total


def _consume(pool: Dict[Value, float], value: Value, flow: float) -> None:
    left = pool[value] - flow
    if left <= 1e-12:
        del pool[value]
    else:
        pool[value] = left
