"""Earth-Mover's-Distance style set distance (alternative to MAC).

The EMD of Chakrabarti et al. [VLDB'00] measures how much "work" turns one
value distribution into another.  Multisets here carry unequal total mass
(different element counts), so the transport is computed on raw
multiplicities -- greedy, cheapest ground distance first -- and whatever
mass cannot be matched (the difference of the totals) is charged its
magnitude linearly.  Compared with :func:`repro.metrics.mac.mac_distance`,
EMD's linear residual makes it insensitive to *how* a multiplicity surplus
is distributed across parents; the ESD experiments therefore default to
MAC, and EMD is provided for comparison (the paper names both as valid
plug-ins for the set distance inside ESD).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Tuple

Value = Hashable
Weighted = Sequence[Tuple[Value, int]]


def emd_distance(
    left: Weighted,
    right: Weighted,
    dist_fn: Callable[[Value, Value], float],
    magnitude_fn: Callable[[Value], float],
    tiebreak_fn: Callable[[Value], str] = repr,
) -> float:
    """EMD-style distance between two weighted multisets."""
    remaining_l: Dict[Value, float] = {}
    for value, mult in left:
        remaining_l[value] = remaining_l.get(value, 0.0) + mult
    remaining_r: Dict[Value, float] = {}
    for value, mult in right:
        remaining_r[value] = remaining_r.get(value, 0.0) + mult

    # Identical values transport at zero cost first -- always optimal for
    # a ground metric, and it guarantees that afterwards each value
    # survives on at most one side, which makes the side-symmetric
    # tie-break below unambiguous.
    for value in list(remaining_l):
        if value in remaining_r:
            flow = min(remaining_l[value], remaining_r[value])
            _consume(remaining_l, value, flow)
            _consume(remaining_r, value, flow)

    total = 0.0
    if remaining_l and remaining_r:
        pairs: List[Tuple[float, Value, Value]] = [
            (dist_fn(lv, rv), lv, rv)
            for lv in remaining_l
            for rv in remaining_r
        ]
        # Side-symmetric tie-break (see repro.metrics.mac).
        pairs.sort(
            key=lambda p: (p[0], *sorted((tiebreak_fn(p[1]), tiebreak_fn(p[2]))))
        )
        for dist, lv, rv in pairs:
            have_l = remaining_l.get(lv, 0.0)
            have_r = remaining_r.get(rv, 0.0)
            if not have_l or not have_r:
                continue
            flow = min(have_l, have_r)
            total += flow * dist
            _consume(remaining_l, lv, flow)
            _consume(remaining_r, rv, flow)
            if not remaining_l or not remaining_r:
                break

    for residue in (remaining_l, remaining_r):
        for value, mult in residue.items():
            total += magnitude_fn(value) * mult
    return total


def _consume(pool: Dict[Value, float], value: Value, flow: float) -> None:
    left = pool[value] - flow
    if left <= 1e-12:
        del pool[value]
    else:
        pool[value] = left
