"""Error metrics for approximate XML query answers (paper Section 5).

* :mod:`repro.metrics.mac` -- a Match-And-Compare style distance between
  weighted value multisets (our instantiation of MAC [Ioannidis & Poosala,
  VLDB'99]; see DESIGN.md for the substitution notes).
* :mod:`repro.metrics.emd` -- an Earth-Mover's-Distance style alternative
  set distance.
* :mod:`repro.metrics.esd` -- the Element Simulation Distance between XML
  trees, computed over their joint count-stable summaries.
* :mod:`repro.metrics.tree_edit` -- Zhang-Shasha tree-edit distance (the
  syntax-oriented strawman the paper argues against).
* :mod:`repro.metrics.error` -- sanity-bounded relative error for
  selectivity estimates.
"""

from repro.metrics.mac import mac_distance, FrequencyPenalty
from repro.metrics.emd import emd_distance
from repro.metrics.esd import esd, esd_nesting_trees
from repro.metrics.tree_edit import tree_edit_distance
from repro.metrics.error import absolute_relative_error, sanity_bound, workload_errors

__all__ = [
    "mac_distance",
    "FrequencyPenalty",
    "emd_distance",
    "esd",
    "esd_nesting_trees",
    "tree_edit_distance",
    "absolute_relative_error",
    "sanity_bound",
    "workload_errors",
]
