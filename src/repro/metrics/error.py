"""Sanity-bounded relative error for selectivity estimates (Section 6.1).

The paper scores an estimate ``e`` against the true count ``r`` with the
absolute relative error ``|r - e| / max(r, s)``, where the sanity bound
``s`` is the 10-percentile of the true counts in the workload; the bound
prevents low-count queries from producing artificially huge percentages.

Note: the paper's text prints ``max(e, s)``; we follow the established
convention of the XSketch line of work (``max(r, s)``), since dividing by
the *estimate* would reward under-estimation -- pass
``denominator="estimate"`` to reproduce the literal formula.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def sanity_bound(true_counts: Sequence[float], percentile: float = 10.0) -> float:
    """The workload's sanity bound: a percentile of the true counts."""
    if not true_counts:
        raise ValueError("cannot compute a sanity bound on an empty workload")
    ordered = sorted(true_counts)
    rank = (percentile / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    value = ordered[low] * (1 - frac) + ordered[high] * frac
    return max(1.0, value)


def absolute_relative_error(
    true_count: float,
    estimate: float,
    sanity: float = 1.0,
    denominator: str = "true",
) -> float:
    """``|r - e| / max(r, s)`` (or ``max(e, s)`` with denominator="estimate")."""
    if denominator == "true":
        denom = max(true_count, sanity)
    elif denominator == "estimate":
        denom = max(estimate, sanity)
    else:
        raise ValueError(f"unknown denominator mode {denominator!r}")
    return abs(true_count - estimate) / denom


def workload_errors(
    pairs: Sequence[Tuple[float, float]],
    percentile: float = 10.0,
    denominator: str = "true",
) -> List[float]:
    """Per-query sanity-bounded errors for (true, estimate) pairs."""
    sanity = sanity_bound([true for true, _ in pairs], percentile)
    return [
        absolute_relative_error(true, est, sanity, denominator)
        for true, est in pairs
    ]


def average_error(
    pairs: Sequence[Tuple[float, float]],
    percentile: float = 10.0,
    denominator: str = "true",
) -> float:
    """Average sanity-bounded relative error over a workload."""
    errors = workload_errors(pairs, percentile, denominator)
    return sum(errors) / len(errors)
