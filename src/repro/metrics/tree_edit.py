"""Zhang-Shasha tree-edit distance [Shasha & Zhang, J. Algorithms 1990].

The paper uses tree-edit distance as the strawman: it measures *syntactic*
differences (minimum-cost node insertions, deletions, relabelings over
ordered trees) and therefore cannot tell apart approximate answers that
preserve edge-count correlations from those that destroy them (Fig. 10).
We implement it to reproduce that argument quantitatively; complexity is
O(n1 * n2 * min(depth, leaves)^2), so use it on small trees only.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def _postorder_arrays(root: XMLNode) -> Tuple[List[str], List[int]]:
    """Labels and leftmost-leaf-descendant indexes, in post-order."""
    labels: List[str] = []
    lmld: List[int] = []
    index_of = {}

    def walk(node: XMLNode) -> int:
        first_leaf: Optional[int] = None
        for child in node.children:
            child_leaf = walk(child)
            if first_leaf is None:
                first_leaf = child_leaf
        idx = len(labels)
        labels.append(node.label)
        leaf = idx if first_leaf is None else first_leaf
        lmld.append(leaf)
        index_of[id(node)] = idx
        return leaf

    walk(root)
    return labels, lmld


def _keyroots(lmld: List[int]) -> List[int]:
    """Key roots: nodes with no ancestor sharing their leftmost leaf."""
    seen = set()
    keyroots = []
    for i in range(len(lmld) - 1, -1, -1):
        if lmld[i] not in seen:
            keyroots.append(i)
            seen.add(lmld[i])
    keyroots.reverse()
    return keyroots


def tree_edit_distance(
    left: XMLTree,
    right: XMLTree,
    insert_cost: float = 1.0,
    delete_cost: float = 1.0,
    relabel_cost: Callable[[str, str], float] = lambda a, b: 0.0 if a == b else 1.0,
) -> float:
    """Minimum-cost edit script turning ``left`` into ``right``."""
    labels1, lmld1 = _postorder_arrays(left.root)
    labels2, lmld2 = _postorder_arrays(right.root)
    n1, n2 = len(labels1), len(labels2)
    kr1, kr2 = _keyroots(lmld1), _keyroots(lmld2)

    treedist = [[0.0] * n2 for _ in range(n1)]

    for i in kr1:
        for j in kr2:
            _compute_treedist(
                i, j, labels1, labels2, lmld1, lmld2, treedist,
                insert_cost, delete_cost, relabel_cost,
            )
    return treedist[n1 - 1][n2 - 1]


def _compute_treedist(
    i: int,
    j: int,
    labels1: List[str],
    labels2: List[str],
    lmld1: List[int],
    lmld2: List[int],
    treedist: List[List[float]],
    ins: float,
    dele: float,
    relabel: Callable[[str, str], float],
) -> None:
    li, lj = lmld1[i], lmld2[j]
    m, n = i - li + 2, j - lj + 2
    forest = [[0.0] * n for _ in range(m)]

    for di in range(1, m):
        forest[di][0] = forest[di - 1][0] + dele
    for dj in range(1, n):
        forest[0][dj] = forest[0][dj - 1] + ins

    for di in range(1, m):
        for dj in range(1, n):
            i1, j1 = li + di - 1, lj + dj - 1
            if lmld1[i1] == li and lmld2[j1] == lj:
                forest[di][dj] = min(
                    forest[di - 1][dj] + dele,
                    forest[di][dj - 1] + ins,
                    forest[di - 1][dj - 1] + relabel(labels1[i1], labels2[j1]),
                )
                treedist[i1][j1] = forest[di][dj]
            else:
                fi = lmld1[i1] - li
                fj = lmld2[j1] - lj
                forest[di][dj] = min(
                    forest[di - 1][dj] + dele,
                    forest[di][dj - 1] + ins,
                    forest[fi][fj] + treedist[i1][j1],
                )
