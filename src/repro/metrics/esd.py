"""Element Simulation Distance (ESD) between XML trees (paper Section 5).

``ESD(u, v)`` measures how well two same-label elements "simulate" each
other: group each element's children by tag, treat the two per-tag child
groups as weighted value multisets whose pairwise value distances are the
recursive ESD of the children, and sum a set distance (MAC by default, EMD
optionally) over the tags.  Missing sub-trees are charged their size, so
ESD reflects both the overall path structure and the distribution of
document edges -- unlike tree-edit distance, which only counts syntactic
edits (Fig. 10).

Following the paper's implementation note, ESD is computed on the *joint*
count-stable summary of the two trees: identical sub-trees (within or
across the trees) share an equivalence class, making their distance zero by
construction, and the recursion memoizes on class pairs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.engine.nesting import NestingTree, NTNode
from repro.metrics.emd import emd_distance
from repro.metrics.mac import FrequencyPenalty, mac_distance
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

# Per equivalence class: tag -> list of (child class id, multiplicity).
ChildGroups = Dict[str, List[Tuple[int, int]]]


class _JointClasses:
    """Count-stable equivalence classes shared across several trees.

    Each class also carries an *intrinsic structural fingerprint* (a hash
    of its canonical sub-tree form, computed bottom-up from child
    fingerprints).  Tie-breaking in the set-distance matching must use
    these fingerprints rather than class ids: ids reflect interning
    order, which depends on which tree was classified first, and an
    order-dependent tie-break would make ESD asymmetric.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, Tuple[Tuple[int, int], ...]], int] = {}
        self.label: List[str] = []
        self.groups: List[ChildGroups] = []
        self.size: List[float] = []
        self.fingerprint: List[str] = []

    def classify(self, root: XMLNode) -> int:
        """Class id of ``root`` (building classes for its whole sub-tree)."""
        import hashlib

        class_of: Dict[int, int] = {}
        for node in root.iter_postorder():
            counts = Counter(class_of[id(c)] for c in node.children)
            signature = (node.label, tuple(sorted(counts.items())))
            cid = self._table.get(signature)
            if cid is None:
                cid = len(self.label)
                self._table[signature] = cid
                self.label.append(node.label)
                groups: ChildGroups = {}
                size = 1.0
                for child_cid, mult in signature[1]:
                    groups.setdefault(self.label[child_cid], []).append(
                        (child_cid, mult)
                    )
                    size += mult * self.size[child_cid]
                self.groups.append(groups)
                self.size.append(size)
                child_part = ",".join(
                    f"{self.fingerprint[child_cid]}*{mult}"
                    for child_cid, mult in sorted(
                        signature[1],
                        key=lambda item: (self.fingerprint[item[0]], item[1]),
                    )
                )
                raw = f"{node.label}({child_part})".encode("utf-8")
                self.fingerprint.append(hashlib.md5(raw).hexdigest())
            class_of[id(node)] = cid
        return class_of[id(root)]


class ESDCalculator:
    """Reusable ESD computation over a shared class space.

    Reuse across many tree pairs (e.g., a whole query workload) lets the
    memo tables amortize: repeated sub-structures across answers are
    classified and compared once.
    """

    def __init__(
        self,
        set_distance: str = "mac",
        penalty: FrequencyPenalty = FrequencyPenalty.TRIANGULAR,
        exact_matching: bool = False,
    ) -> None:
        """``exact_matching=True`` solves each per-tag multiset matching
        optimally (Hungarian, small sets only) instead of greedily --
        slower, and rarely different on real child multisets; exposed for
        validation runs."""
        if set_distance not in ("mac", "emd"):
            raise ValueError(f"unknown set distance {set_distance!r}")
        self._set_distance = set_distance
        self._penalty = penalty
        self._exact = exact_matching
        self._classes = _JointClasses()
        self._memo: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------

    def distance(self, left: XMLTree, right: XMLTree) -> float:
        """ESD between two document trees."""
        c1 = self._classes.classify(left.root)
        c2 = self._classes.classify(right.root)
        return self._class_distance(c1, c2)

    def distance_roots(self, left: XMLNode, right: XMLNode) -> float:
        """ESD between two sub-trees given by their root nodes."""
        c1 = self._classes.classify(left)
        c2 = self._classes.classify(right)
        return self._class_distance(c1, c2)

    # ------------------------------------------------------------------

    def _class_distance(self, c1: int, c2: int) -> float:
        if c1 == c2:
            return 0.0
        classes = self._classes
        if classes.label[c1] != classes.label[c2]:
            # Only possible at the root of a comparison; charge a full
            # delete + insert of both sub-trees.
            return classes.size[c1] + classes.size[c2]
        key = (c1, c2) if c1 < c2 else (c2, c1)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Seed the memo to guard against recursive labels (cannot occur in
        # a joint stable DAG, but keeps the recursion total regardless).
        self._memo[key] = 0.0

        groups1, groups2 = classes.groups[c1], classes.groups[c2]
        total = 0.0
        for tag in set(groups1) | set(groups2):
            left = groups1.get(tag, [])
            right = groups2.get(tag, [])
            if self._set_distance == "mac":
                total += mac_distance(
                    left, right, self._class_distance, self._magnitude,
                    self._penalty, exact=self._exact,
                    tiebreak_fn=self._tiebreak,
                )
            else:
                total += emd_distance(
                    left, right, self._class_distance, self._magnitude,
                    tiebreak_fn=self._tiebreak,
                )
        self._memo[key] = total
        return total

    def _magnitude(self, cid: int) -> float:
        return self._classes.size[cid]

    def _tiebreak(self, cid: int) -> str:
        return self._classes.fingerprint[cid]


def esd(
    left: XMLTree,
    right: XMLTree,
    set_distance: str = "mac",
    penalty: FrequencyPenalty = FrequencyPenalty.TRIANGULAR,
) -> float:
    """One-shot ESD between two trees (``ESD(root(T1), root(T2))``)."""
    return ESDCalculator(set_distance, penalty).distance(left, right)


def nesting_tree_to_xmltree(nt: NestingTree, by_variable: bool = True) -> XMLTree:
    """Convert a nesting tree for metric evaluation.

    With ``by_variable=True`` (the paper's "straightforward extension"),
    node labels are qualified by the query variable they bind, so ESD only
    compares binding elements of the same variable.
    """

    def tag(node: NTNode) -> str:
        return f"{node.label}@{node.qvar}" if by_variable else node.label

    root = XMLNode(tag(nt.root))
    stack = [(nt.root, root)]
    while stack:
        src, dst = stack.pop()
        for child in src.children:
            stack.append((child, dst.new_child(tag(child))))
    return XMLTree(root)


def esd_nesting_trees(
    truth: NestingTree,
    approx: NestingTree,
    by_variable: bool = True,
    calculator: Optional[ESDCalculator] = None,
) -> float:
    """ESD between a true and an approximate nesting tree."""
    t1 = nesting_tree_to_xmltree(truth, by_variable)
    t2 = nesting_tree_to_xmltree(approx, by_variable)
    if calculator is None:
        return esd(t1, t2)
    return calculator.distance(t1, t2)
