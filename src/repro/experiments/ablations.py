"""Ablations for the design choices the paper calls out.

* **Bottom-up vs top-down construction** (Section 4.2 claims bottom-up
  merging "yields much better results" than top-down splitting):
  :func:`build_treesketch_topdown` is the top-down comparator -- greedy
  squared-error-driven node splitting from the label-split graph, i.e. the
  XSketch-style search direction with TSBUILD's workload-independent
  objective.
* **CREATEPOOL candidate cap**: quality/time trade-off of the bounded,
  windowed candidate pool vs exhaustive same-label pair generation.
* **Squared error vs answer quality** (the Section 4.3 "missing link"):
  the correlation between ``sq(TS)`` and the ESD of the answers TS
  produces, across compression levels.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.core.build import TreeSketchBuilder, TSBuildOptions
from repro.core.size import EDGE_BYTES, NODE_BYTES
from repro.core.stable import StableSummary
from repro.core.treesketch import TreeSketch
from repro.experiments.harness import Bundle
from repro.metrics.esd import ESDCalculator
from repro.workload.runner import run_answer_quality, run_selectivity
from repro.xsketch.atoms import build_atom_graph
from repro.xsketch.build import _Partition, _proposed_splits


def build_treesketch_topdown(
    stable: StableSummary,
    budget_bytes: int,
    candidate_clusters: int = 8,
) -> TreeSketch:
    """Top-down TreeSketch: split greedily by squared-error reduction.

    Starts from the label-split graph and repeatedly applies the split
    that most reduces the summed child-count variance per byte spent,
    until the budget is filled.  Sizes count nodes and edges only (the
    TreeSketch size model), so the comparison against TSBUILD is at equal
    budgets with the same objective -- only the search direction differs.
    """
    atoms = build_atom_graph(stable)
    # A huge bucket budget keeps the partition's histograms exact.
    part = _Partition(atoms, bucket_budget=1_000_000_000)

    def size_bytes() -> int:
        nodes = len(part.members)
        edges = sum(
            1
            for cid in part.members
            for t in part.histogram(cid).targets
            if part.histogram(cid).mean(t) > 0
        )
        return NODE_BYTES * nodes + EDGE_BYTES * edges

    exhausted: set = set()
    while size_bytes() < budget_bytes:
        ranked = sorted(
            (c for c in part.members if c not in exhausted),
            key=lambda c: -part.cluster_spread(c),
        )
        applied = False
        for cid in ranked[:candidate_clusters]:
            proposals = _proposed_splits(part, cid)
            best: Optional[Tuple[float, Sequence[Sequence[int]]]] = None
            spread_before = part.cluster_spread(cid)
            for groups in proposals:
                token = part.split(cid, groups)
                try:
                    spread_after = sum(
                        part.cluster_spread(c)
                        for c in set(part.assign[a] for g in groups for a in g)
                    )
                finally:
                    part.undo(token)
                gain = spread_before - spread_after
                if best is None or gain > best[0]:
                    best = (gain, groups)
            if best is None:
                exhausted.add(cid)
                continue
            part.split(cid, best[1])
            applied = True
            break
        if not applied:
            if len(exhausted) >= len(part.members):
                break
            if not ranked:
                break
    return part.synopsis().view()


def topdown_vs_bottomup(
    bundle: Bundle,
    budgets_kb: Sequence[int],
    esd_queries: int = 25,
) -> List[List[object]]:
    """[budget, bottom-up err%, top-down err%, bu ESD, td ESD] rows."""
    calc = ESDCalculator()
    query_ids = bundle.esd_query_ids(min(esd_queries, len(bundle.workload)))
    rows = []
    for kb in budgets_kb:
        bottom_up = bundle.treesketch(kb * 1024)
        top_down = build_treesketch_topdown(bundle.stable, kb * 1024)
        bu_sel = run_selectivity(bottom_up, bundle.workload)
        td_sel = run_selectivity(top_down, bundle.workload)
        bu_esd = run_answer_quality(bottom_up, bundle.workload, query_ids, calculator=calc)
        td_esd = run_answer_quality(top_down, bundle.workload, query_ids, calculator=calc)
        rows.append(
            [kb, bu_sel.avg_error * 100, td_sel.avg_error * 100,
             bu_esd.avg_esd, td_esd.avg_esd]
        )
    return rows


def pool_window_ablation(
    bundle: Bundle,
    budget_kb: int,
    windows: Sequence[Optional[int]] = (8, 32, 128, None),
) -> List[List[object]]:
    """[window, build seconds, squared error, selectivity err%] rows.

    ``None`` is the exhaustive pool (the paper's unbounded CREATEPOOL).
    """
    rows = []
    for window in windows:
        options = TSBuildOptions(pair_window=window)
        start = time.perf_counter()
        sketch = TreeSketchBuilder(bundle.stable, options).compress_to(budget_kb * 1024)
        seconds = time.perf_counter() - start
        quality = run_selectivity(sketch, bundle.workload)
        rows.append(
            ["exhaustive" if window is None else window,
             seconds, sketch.squared_error(), quality.avg_error * 100]
        )
    return rows


def sq_error_vs_esd(
    bundle: Bundle,
    budgets_kb: Sequence[int],
    esd_queries: int = 25,
) -> List[List[object]]:
    """[budget, sq(TS), avg ESD] rows -- the Section 4.3 'missing link'."""
    calc = ESDCalculator()
    query_ids = bundle.esd_query_ids(min(esd_queries, len(bundle.workload)))
    rows = []
    for kb in sorted(budgets_kb, reverse=True):
        sketch = bundle.treesketch(kb * 1024)
        quality = run_answer_quality(sketch, bundle.workload, query_ids, calculator=calc)
        rows.append([kb, sketch.squared_error(), quality.avg_esd])
    return rows


def spearman_rank_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (no ties expected in these series)."""
    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        rank = [0.0] * len(values)
        for position, idx in enumerate(order):
            rank[idx] = float(position)
        return rank

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    if n < 2:
        return float("nan")
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1.0 - (6.0 * d2) / (n * (n * n - 1))
