"""Workload-shape sensitivity of TreeSketch estimation.

The paper evaluates one workload distribution; a robustness question
remains: does accuracy hold up when queries get deeper, branchier, more
descendant-heavy, or more predicate-laden?  This module sweeps workload
generator parameters, one axis at a time, and measures estimation error
at a fixed budget -- the "beyond the paper" robustness experiment backing
``benchmarks/test_sensitivity.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.estimate import estimate_selectivity
from repro.core.evaluate import eval_query
from repro.experiments.harness import Bundle
from repro.metrics.error import average_error
from repro.query.generator import WorkloadOptions, generate_workload

# One-axis-at-a-time variations of the default workload shape.
DEFAULT_VARIATIONS: Dict[str, dict] = {
    "default": {},
    "child-axis only": {"descendant_prob": 0.0},
    "descendant heavy": {"descendant_prob": 0.95},
    "deep queries": {"max_query_depth": 5, "max_path_len": 4},
    "branchy": {"max_branches": 4, "branch_prob": 0.9},
    "predicate heavy": {"predicate_prob": 0.8},
    "no optional edges": {"optional_prob": 0.0},
    "all optional edges": {"optional_prob": 1.0},
}


def workload_sensitivity(
    bundle: Bundle,
    budget_kb: int,
    num_queries: int = 60,
    seed: int = 414,
    variations: Optional[Dict[str, dict]] = None,
) -> List[List[object]]:
    """Rows of [variation, avg err %, max err %] at one synopsis budget."""
    sketch = bundle.treesketch(budget_kb * 1024)
    evaluator = bundle.workload.evaluator
    rows: List[List[object]] = []
    for name, overrides in (variations or DEFAULT_VARIATIONS).items():
        options = replace(
            WorkloadOptions(num_queries=num_queries, seed=seed), **overrides
        )
        queries = generate_workload(bundle.stable, options)
        pairs = [
            (float(evaluator.selectivity(q)),
             estimate_selectivity(eval_query(sketch, q)))
            for q in queries
        ]
        from repro.metrics.error import workload_errors

        errors = workload_errors(pairs)
        rows.append(
            [name, average_error(pairs) * 100, max(errors) * 100]
        )
    return rows
