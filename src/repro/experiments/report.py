"""One-shot experiment report: ``python -m repro.experiments.report``.

Runs the full table/figure pipeline (the same code the benchmarks wrap)
and writes a self-contained Markdown report.  Use ``--quick`` for a
fast sanity pass (small workloads, two budgets, TX data sets only).

This is the entry point for someone who wants the paper-vs-measured
story without pytest in the loop.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Sequence


def _configure(quick: bool) -> None:
    if quick:
        os.environ.setdefault("REPRO_WORKLOAD_SIZE", "40")
        os.environ.setdefault("REPRO_ESD_QUERIES", "12")
        os.environ.setdefault("REPRO_BUDGETS_KB", "10,30")


def _markdown_table(header: Sequence[str], rows) -> List[str]:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:,.2f}")
            elif isinstance(value, int):
                cells.append(f"{value:,}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def generate_report(quick: bool = False, esd: bool = True) -> str:
    """Build the Markdown report text (imports deferred until configured)."""
    _configure(quick)
    from repro.experiments.figures import fig11_series, fig12_series, fig13_series
    from repro.experiments.harness import budgets_kb, dataset_names, workload_size
    from repro.experiments.tables import table1_rows, table2_rows, table3_rows

    started = time.strftime("%Y-%m-%d %H:%M:%S")
    lines: List[str] = [
        "# TreeSketch experiment report",
        "",
        f"Generated {started}; workload size {workload_size()}, "
        f"budgets {budgets_kb()} KB"
        + (" (quick mode)" if quick else "") + ".",
        "",
        "## Table 1 — data sets",
        "",
    ]
    lines += _markdown_table(
        ["data set", "elements", "file MB", "stable KB"], table1_rows()
    )

    lines += ["## Table 2 — workloads", ""]
    lines += _markdown_table(["data set", "avg binding tuples"], table2_rows())

    lines += ["## Table 3 — construction seconds", ""]
    lines += _markdown_table(
        ["data set", "TreeSketch s", "twig-XSketch s", "ratio"],
        table3_rows(budgets_kb=budgets_kb()),
    )

    tx = dataset_names(tx_only=True)
    if esd:
        for name in tx:
            lines += [f"## Figure 11 — avg answer ESD ({name})", ""]
            lines += _markdown_table(
                ["budget KB", "TreeSketch", "twig-XSketch"], fig11_series(name)
            )

    for name in tx:
        lines += [f"## Figure 12 — selectivity error % ({name})", ""]
        lines += _markdown_table(
            ["budget KB", "TreeSketch %", "twig-XSketch %"], fig12_series(name)
        )

    lines += ["## Figure 13 — large data sets, TreeSketch error %", ""]
    fig13 = fig13_series()
    names = list(fig13)
    header = ["budget KB"] + names
    rows = []
    for i, (kb, _err) in enumerate(fig13[names[0]]):
        rows.append([kb] + [fig13[name][i][1] for name in names])
    lines += _markdown_table(header, rows)

    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.report",
        description="Regenerate the paper's tables/figures into a Markdown report",
    )
    parser.add_argument("-o", "--output", default="RESULTS.md")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, two budgets (sanity pass)")
    parser.add_argument("--no-esd", action="store_true",
                        help="skip the (slow) Figure 11 answer-quality runs")
    args = parser.parse_args(argv)

    report = generate_report(quick=args.quick, esd=not args.no_esd)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
