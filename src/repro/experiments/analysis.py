"""Numeric analysis helpers for experiment series (numpy-backed).

Small utilities the benchmark reports and EXPERIMENTS.md use to
characterize accuracy/space curves: error percentiles, log-log slope fits
(how fast error decays with budget), and correlation between internal and
external quality metrics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def percentile_profile(
    errors: Sequence[float], percentiles: Sequence[float] = (50, 90, 99)
) -> Tuple[float, ...]:
    """Selected percentiles of a per-query error distribution."""
    if not len(errors):
        raise ValueError("empty error series")
    return tuple(float(np.percentile(np.asarray(errors, dtype=float), p))
                 for p in percentiles)


def loglog_slope(budgets: Sequence[float], errors: Sequence[float]) -> float:
    """Least-squares slope of log(error) vs log(budget).

    A slope of about -1 means error halves when the budget doubles;
    steeper (more negative) slopes mean the synopsis exploits extra space
    super-linearly.  Zero error values are clamped to the smallest
    positive value observed (log cannot take 0).
    """
    x = np.asarray(budgets, dtype=float)
    y = np.asarray(errors, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need two or more (budget, error) points")
    positive = y[y > 0]
    floor = positive.min() if positive.size else 1.0
    y = np.clip(y, floor, None)
    slope, _intercept = np.polyfit(np.log(x), np.log(y), 1)
    return float(slope)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation between two equal-length series."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two or more paired points")
    if np.std(x) == 0 or np.std(y) == 0:
        return float("nan")
    return float(np.corrcoef(x, y)[0, 1])


def geometric_mean_ratio(
    baseline: Sequence[float], challenger: Sequence[float]
) -> float:
    """Geometric mean of baseline/challenger ratios (how many times better).

    Used to condense "TreeSketch is N x better across budgets" into one
    number; pairs where either side is zero are skipped.
    """
    ratios = [
        b / c
        for b, c in zip(baseline, challenger)
        if b > 0 and c > 0
    ]
    if not ratios:
        return float("nan")
    return float(np.exp(np.mean(np.log(ratios))))
