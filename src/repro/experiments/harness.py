"""Shared fixtures for the experiment suite: data sets, workloads, synopses.

Everything is cached per process so that benchmark modules touching the
same data set don't regenerate it; all randomness is seeded, so repeated
runs print identical numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.build import TreeSketchBuilder, compress_to_budgets
from repro.core.stable import StableSummary, build_stable
from repro.core.treesketch import TreeSketch
from repro.datagen.datasets import DATASETS, TX_DATASETS
from repro.workload.workload import Workload, make_workload
from repro.xmltree.tree import XMLTree
from repro.xsketch.build import XSketchBuildOptions, build_twig_xsketch
from repro.xsketch.synopsis import TwigXSketch


def workload_size(default: int = 120) -> int:
    return int(os.environ.get("REPRO_WORKLOAD_SIZE", default))


def esd_query_count(default: int = 40) -> int:
    return int(os.environ.get("REPRO_ESD_QUERIES", default))


def budgets_kb(default: str = "10,20,30,40,50") -> List[int]:
    raw = os.environ.get("REPRO_BUDGETS_KB", default)
    return [int(part) for part in raw.split(",") if part.strip()]


def dataset_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@dataclass
class Bundle:
    """One data set with its stable summary and workload."""

    name: str
    tree: XMLTree
    stable: StableSummary
    workload: Workload

    # Lazily built synopses, keyed by budget in bytes.
    _treesketches: Dict[int, TreeSketch] = field(default_factory=dict, repr=False)
    _xsketches: Dict[int, TwigXSketch] = field(default_factory=dict, repr=False)
    _ts_builder: Optional[TreeSketchBuilder] = field(default=None, repr=False)

    def treesketch(self, budget_bytes: int) -> TreeSketch:
        """TreeSketch at a budget (one shared compression pass)."""
        if budget_bytes not in self._treesketches:
            if self._ts_builder is None:
                self._ts_builder = TreeSketchBuilder(self.stable)
            if (
                self._treesketches
                and budget_bytes > min(self._treesketches)
            ):
                # Builder state is already below this budget; rebuild fresh.
                sketch = TreeSketchBuilder(self.stable).compress_to(budget_bytes)
            else:
                sketch = self._ts_builder.compress_to(budget_bytes)
            self._treesketches[budget_bytes] = sketch
        return self._treesketches[budget_bytes]

    def treesketch_sweep(self, budgets_bytes: List[int]) -> Dict[int, TreeSketch]:
        """All budgets in one decreasing pass (cheapest order)."""
        missing = [b for b in budgets_bytes if b not in self._treesketches]
        if missing:
            for budget, sketch in compress_to_budgets(self.stable, missing).items():
                self._treesketches[budget] = sketch
        return {b: self._treesketches[b] for b in budgets_bytes}

    def esd_query_ids(self, count: int, max_nt_size: int = 60_000) -> List[int]:
        """Indices of the first ``count`` queries with bounded answers.

        ESD evaluation materializes the true and approximate nesting
        trees; queries whose *exact* answer already exceeds
        ``max_nt_size`` elements are excluded up front, so every budget
        and technique is scored on the same query set (skipping failures
        per-budget would bias the averages).
        """
        cache = getattr(self, "_esd_ids", None)
        if cache is None:
            cache = {}
            self._esd_ids = cache
        key = (count, max_nt_size)
        if key not in cache:
            chosen: List[int] = []
            for i, query in enumerate(self.workload.queries):
                nt = self.workload.evaluator.evaluate(query)
                if nt.size() <= max_nt_size:
                    chosen.append(i)
                if len(chosen) >= count:
                    break
            cache[key] = chosen
        return cache[key]

    def training_workload(self, num_queries: int = 40) -> Workload:
        """A held-out workload for workload-driven construction.

        Sampled from the same distribution as the evaluation workload but
        with a different seed, so the twig-XSketch baseline is not scored
        on its own training queries.
        """
        if getattr(self, "_training", None) is None:
            self._training = make_workload(
                self.tree, num_queries=num_queries, seed=7717, stable=self.stable
            )
        return self._training

    def xsketch_sweep(
        self,
        budgets_bytes: List[int],
        options: Optional[XSketchBuildOptions] = None,
    ) -> Dict[int, TwigXSketch]:
        """Twig-XSketches for all budgets (one refinement pass)."""
        missing = [b for b in budgets_bytes if b not in self._xsketches]
        if missing:
            training = self.training_workload()
            built = build_twig_xsketch(
                self.stable,
                max(missing),
                training.queries,
                training.truths,
                options or XSketchBuildOptions(),
                snapshot_budgets=missing,
            )
            self._xsketches.update(built)
        return {b: self._xsketches[b] for b in budgets_bytes}


_BUNDLES: Dict[Tuple[str, int, int], Bundle] = {}

_ALL_GENERATORS = {**TX_DATASETS, **DATASETS}


def dataset_names(tx_only: bool = False, large_only: bool = False) -> List[str]:
    if tx_only:
        return list(TX_DATASETS)
    if large_only:
        return list(DATASETS)
    return list(_ALL_GENERATORS)


def load_bundle(name: str, num_queries: Optional[int] = None, seed: int = 0) -> Bundle:
    """Load (and cache) a data set with its workload and ground truth."""
    queries = num_queries if num_queries is not None else workload_size()
    key = (name, queries, seed)
    bundle = _BUNDLES.get(key)
    if bundle is None:
        generator = _ALL_GENERATORS[name]
        tree = generator()
        stable = build_stable(tree)
        workload = make_workload(tree, num_queries=queries, seed=seed, stable=stable)
        bundle = Bundle(name=name, tree=tree, stable=stable, workload=workload)
        _BUNDLES[key] = bundle
    return bundle
