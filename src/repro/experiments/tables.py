"""Tables 1-3 of the paper.

* Table 1: data-set characteristics (elements, serialized size, stable
  summary size).
* Table 2: workload characteristics (average binding tuples per query).
* Table 3: construction times, TreeSketch vs twig-XSketch.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.build import TreeSketchBuilder
from repro.experiments.harness import dataset_names, load_bundle
from repro.xmltree.serialize import xml_byte_size
from repro.xsketch.build import XSketchBuildOptions, build_twig_xsketch


def table1_rows(names: Optional[Sequence[str]] = None) -> List[List[object]]:
    """[data set, elements, file size (MB), stable synopsis size (KB)]."""
    rows = []
    for name in names or dataset_names():
        bundle = load_bundle(name)
        rows.append(
            [
                name,
                len(bundle.tree),
                xml_byte_size(bundle.tree) / (1024 * 1024),
                bundle.stable.size_bytes() / 1024,
            ]
        )
    return rows


def table2_rows(names: Optional[Sequence[str]] = None) -> List[List[object]]:
    """[data set, avg number of binding tuples per workload query]."""
    rows = []
    for name in names or dataset_names():
        bundle = load_bundle(name)
        rows.append([name, bundle.workload.avg_binding_tuples()])
    return rows


def table3_rows(
    names: Optional[Sequence[str]] = None,
    budgets_kb: Sequence[int] = (10, 20, 30, 40, 50),
    xsketch_options: Optional[XSketchBuildOptions] = None,
) -> List[List[object]]:
    """[data set, TreeSketch build (s), twig-XSketch build (s), ratio].

    The paper's Table 3 compares the two construction algorithms on their
    experiment workloads; we measure each technique producing the full
    budget sweep the figures consume (10-50 KB snapshots).  The paper's
    literal protocol (TreeSketch all the way to the label-split graph vs
    twig-XSketch to 10 KB only) degenerates on scaled-down documents,
    where the baseline's label-split starting point is already close to
    10 KB and its expensive workload-scored refinement barely runs.
    """
    rows = []
    budgets = [kb * 1024 for kb in budgets_kb]
    for name in names or dataset_names(tx_only=True):
        bundle = load_bundle(name)
        training = bundle.training_workload()

        start = time.perf_counter()
        builder = TreeSketchBuilder(bundle.stable)
        for budget in sorted(budgets, reverse=True):
            builder.compress_to(budget)
        ts_seconds = time.perf_counter() - start

        start = time.perf_counter()
        build_twig_xsketch(
            bundle.stable,
            max(budgets),
            training.queries,
            training.truths,
            xsketch_options or XSketchBuildOptions(),
            snapshot_budgets=budgets,
        )
        xs_seconds = time.perf_counter() - start

        rows.append([name, ts_seconds, xs_seconds, xs_seconds / max(ts_seconds, 1e-9)])
    return rows
