"""Experiment harness: regenerates every table and figure of the paper.

The benchmark modules under ``benchmarks/`` are thin wrappers around this
package; everything here is importable so experiments can also be run from
a REPL or script.

Environment knobs (all optional):

* ``REPRO_WORKLOAD_SIZE`` -- queries per workload (default 120; the paper
  uses 1000 -- set it for a full-fidelity, slower run).
* ``REPRO_ESD_QUERIES``  -- queries scored with ESD per configuration
  (default 40; ESD evaluation is the expensive part).
* ``REPRO_BUDGETS_KB``   -- comma-separated synopsis budgets
  (default ``10,20,30,40,50``, the paper's x-axis).
* ``REPRO_SCALE``        -- multiplies data-set scales (default 1.0).
"""

from repro.experiments.harness import (
    Bundle,
    budgets_kb,
    esd_query_count,
    load_bundle,
    workload_size,
)
from repro.experiments.tables import table1_rows, table2_rows, table3_rows
from repro.experiments.figures import fig11_series, fig12_series, fig13_series
from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import workload_sensitivity

__all__ = [
    "workload_sensitivity",
    "Bundle",
    "load_bundle",
    "budgets_kb",
    "workload_size",
    "esd_query_count",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "fig11_series",
    "fig12_series",
    "fig13_series",
    "format_table",
]
