"""Plain-text rendering of experiment tables (benchmark stdout)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render a fixed-width table with a title, for benchmark output."""
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
