"""Figures 11-13 of the paper.

Each function returns the plotted series as rows (one per budget), so the
benchmark harness can print the same numbers the paper's plots show:

* Fig. 11: average ESD of approximate answers vs synopsis size, TreeSketch
  vs twig-XSketch, on the TX data sets.
* Fig. 12: average relative selectivity-estimation error vs synopsis size,
  both techniques, on the TX data sets.
* Fig. 13: TreeSketch estimation error vs synopsis size on the large data
  sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    Bundle,
    budgets_kb,
    esd_query_count,
    load_bundle,
)
from repro.metrics.esd import ESDCalculator
from repro.workload.runner import run_answer_quality, run_selectivity
from repro.xsketch.build import XSketchBuildOptions


def fig11_series(
    name: str,
    budgets: Optional[Sequence[int]] = None,
    esd_queries: Optional[int] = None,
    xsketch_options: Optional[XSketchBuildOptions] = None,
) -> List[List[object]]:
    """[budget KB, TreeSketch avg ESD, twig-XSketch avg ESD] rows."""
    bundle = load_bundle(name)
    kbs = list(budgets or budgets_kb())
    n_esd = esd_queries if esd_queries is not None else esd_query_count()
    # Fixed query set with bounded exact answers, shared by every budget
    # and technique (see Bundle.esd_query_ids).
    query_ids = bundle.esd_query_ids(min(n_esd, len(bundle.workload)))

    tsketches = bundle.treesketch_sweep([kb * 1024 for kb in kbs])
    xsketches = bundle.xsketch_sweep([kb * 1024 for kb in kbs], xsketch_options)

    calc = ESDCalculator()
    rows = []
    for kb in kbs:
        ts_quality = run_answer_quality(
            tsketches[kb * 1024], bundle.workload, query_ids, calculator=calc
        )
        xs_quality = run_answer_quality(
            xsketches[kb * 1024], bundle.workload, query_ids, calculator=calc
        )
        rows.append([kb, ts_quality.avg_esd, xs_quality.avg_esd])
    return rows


def fig12_series(
    name: str,
    budgets: Optional[Sequence[int]] = None,
    xsketch_options: Optional[XSketchBuildOptions] = None,
) -> List[List[object]]:
    """[budget KB, TreeSketch error %, twig-XSketch error %] rows."""
    bundle = load_bundle(name)
    kbs = list(budgets or budgets_kb())

    tsketches = bundle.treesketch_sweep([kb * 1024 for kb in kbs])
    xsketches = bundle.xsketch_sweep([kb * 1024 for kb in kbs], xsketch_options)

    rows = []
    for kb in kbs:
        ts_quality = run_selectivity(tsketches[kb * 1024], bundle.workload)
        xs_quality = run_selectivity(xsketches[kb * 1024], bundle.workload)
        rows.append([kb, ts_quality.avg_error * 100, xs_quality.avg_error * 100])
    return rows


def fig13_series(
    names: Optional[Sequence[str]] = None,
    budgets: Optional[Sequence[int]] = None,
) -> Dict[str, List[List[object]]]:
    """Per data set: [budget KB, TreeSketch error %] rows (large sets)."""
    from repro.experiments.harness import dataset_names

    kbs = list(budgets or budgets_kb())
    out: Dict[str, List[List[object]]] = {}
    for name in names or dataset_names(large_only=True):
        bundle = load_bundle(name)
        tsketches = bundle.treesketch_sweep([kb * 1024 for kb in kbs])
        rows = []
        for kb in kbs:
            quality = run_selectivity(tsketches[kb * 1024], bundle.workload)
            rows.append([kb, quality.avg_error * 100])
        out[name] = rows
    return out
