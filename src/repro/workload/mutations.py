"""Mutation workloads: valid edit sequences against one document.

The live-maintenance subsystem (:mod:`repro.core.live`, docs/MAINTENANCE.md)
is exercised with *sequences* of subtree inserts and deletes, and a useful
sequence must stay valid as it is applied -- op k's target node must still
exist after ops 1..k-1 ran.  :func:`make_mutation_workload` therefore
simulates the whole sequence on a private copy of the document while
generating it: every emitted :class:`MutationOp` addresses a node by
``(label, preorder ordinal)`` -- the serving tier's wire addressing, see
``update`` in docs/SERVING.md -- that is guaranteed to resolve at its turn.

Ops serialize to single-line JSON objects (the CLI's ``treesketch update
--script`` replay format, and exactly the field set an ``update`` wire
request carries), so one generated file drives in-process maintainers,
a single daemon, or a sharded fleet identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from random import Random
from typing import Iterable, List, Optional, Tuple, Union

from repro.core.live import find_labeled
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

#: Nested subtree spec: a label, or ``(label, [spec, ...])``.
SubtreeSpec = Union[str, Tuple[str, list]]


@dataclass
class MutationOp:
    """One document edit, addressed the way the wire protocol addresses it."""

    action: str  # "insert_subtree" | "delete_subtree"
    label: Optional[str] = None            # delete: target node label
    ordinal: int = 0                       # delete: n-th preorder match
    parent_label: Optional[str] = None     # insert: attachment point label
    parent_ordinal: int = 0                # insert: n-th preorder match
    subtree: Optional[SubtreeSpec] = None  # insert: nested spec

    def to_json(self) -> dict:
        """The op as the field dict an ``update`` request carries."""
        if self.action == "insert_subtree":
            return {"action": self.action, "parent_label": self.parent_label,
                    "parent_ordinal": self.parent_ordinal,
                    "subtree": _spec_to_json(self.subtree)}
        return {"action": self.action, "label": self.label,
                "ordinal": self.ordinal}

    @staticmethod
    def from_json(doc: dict) -> "MutationOp":
        action = doc.get("action")
        if action == "insert_subtree":
            return MutationOp(action=action,
                              parent_label=doc["parent_label"],
                              parent_ordinal=int(doc.get("parent_ordinal", 0)),
                              subtree=_spec_from_json(doc["subtree"]))
        if action == "delete_subtree":
            return MutationOp(action=action, label=doc["label"],
                              ordinal=int(doc.get("ordinal", 0)))
        raise ValueError(f"unknown mutation action {action!r}")


def _spec_to_json(spec: SubtreeSpec):
    if isinstance(spec, str):
        return spec
    label, children = spec
    return [label, [_spec_to_json(child) for child in children]]


def _spec_from_json(spec) -> SubtreeSpec:
    if isinstance(spec, str):
        return spec
    label, children = spec
    return (label, [_spec_from_json(child) for child in children])


def dump_ops(ops: Iterable[MutationOp]) -> str:
    """Serialize ops as JSON lines (the ``--script`` replay format)."""
    return "\n".join(json.dumps(op.to_json(), separators=(",", ":"))
                     for op in ops) + "\n"


def load_ops(text: str) -> List[MutationOp]:
    """Parse a JSON-lines op script (blank lines and ``#`` comments ok)."""
    ops = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        ops.append(MutationOp.from_json(json.loads(line)))
    return ops


def _ordinal_of(root: XMLNode, target: XMLNode) -> Tuple[str, int]:
    """The wire address ``(label, preorder ordinal)`` of one live node."""
    seen = 0
    for node in root.iter_preorder():
        if node.label == target.label:
            if node is target:
                return target.label, seen
            seen += 1
    raise ValueError("target node is not in the document")  # pragma: no cover


def _random_spec(rng: Random, labels: List[str], budget: int) -> SubtreeSpec:
    """A small random nested subtree drawing labels from the document."""
    label = rng.choice(labels)
    if budget <= 1 or rng.random() < 0.4:
        return label
    num_children = rng.randint(1, min(3, budget - 1))
    share = (budget - 1) // num_children
    return (label, [_random_spec(rng, labels, max(1, share))
                    for _ in range(num_children)])


def make_mutation_workload(
    tree: XMLTree,
    num_ops: int = 100,
    seed: int = 0,
    insert_fraction: float = 0.5,
    max_subtree_nodes: int = 6,
) -> List[MutationOp]:
    """Generate a valid mutation sequence for ``tree``.

    The input document is **not** modified: generation runs against a
    private copy that each chosen op is immediately applied to, so every
    op's ``(label, ordinal)`` address resolves when the sequence is
    replayed in order against the original document.  Deletes never
    target the root and are skipped (in favour of an insert) when the
    shadow document is down to its root.
    """
    if num_ops < 0:
        raise ValueError("num_ops must be >= 0")
    rng = Random(seed)
    shadow = tree.copy()
    labels = sorted({node.label for node in shadow.root.iter_preorder()})
    ops: List[MutationOp] = []
    for _ in range(num_ops):
        nodes = list(shadow.root.iter_preorder())
        want_delete = rng.random() >= insert_fraction and len(nodes) > 1
        if want_delete:
            target = rng.choice(nodes[1:])  # never the root
            label, ordinal = _ordinal_of(shadow.root, target)
            ops.append(MutationOp(action="delete_subtree",
                                  label=label, ordinal=ordinal))
            target.parent.children.remove(target)
            target.parent = None
        else:
            parent = rng.choice(nodes)
            parent_label, parent_ordinal = _ordinal_of(shadow.root, parent)
            spec = _random_spec(rng, labels,
                                rng.randint(1, max_subtree_nodes))
            ops.append(MutationOp(action="insert_subtree",
                                  parent_label=parent_label,
                                  parent_ordinal=parent_ordinal,
                                  subtree=spec))
            parent.add_child(_build_spec(spec))
    return ops


def _build_spec(spec: SubtreeSpec) -> XMLNode:
    if isinstance(spec, str):
        return XMLNode(spec)
    label, children = spec
    node = XMLNode(label)
    for child in children:
        node.add_child(_build_spec(child))
    return node


def apply_mutation(maintainer, op: MutationOp) -> None:
    """Apply one op to a maintainer (stable or sketch level).

    Works against anything exposing the maintainer edit interface --
    ``tree``, ``insert_subtree(parent, spec)``, ``delete_subtree(node)``
    -- i.e. both :class:`repro.core.maintain.StableMaintainer` and
    :class:`repro.core.live.SketchMaintainer`.  Raises :class:`KeyError`
    when the op's address does not resolve.
    """
    root = maintainer.tree.root
    if op.action == "insert_subtree":
        parent = find_labeled(root, op.parent_label, op.parent_ordinal)
        if parent is None:
            raise KeyError(f"no node {op.parent_label!r}#{op.parent_ordinal}")
        maintainer.insert_subtree(parent, op.subtree)
    elif op.action == "delete_subtree":
        node = find_labeled(root, op.label, op.ordinal)
        if node is None:
            raise KeyError(f"no node {op.label!r}#{op.ordinal}")
        maintainer.delete_subtree(node)
    else:  # pragma: no cover - constructors reject unknown actions
        raise ValueError(f"unknown mutation action {op.action!r}")
