"""Workloads and technique runners for the experiments (Section 6.1)."""

from repro.workload.workload import Workload, make_workload
from repro.workload.runner import (
    AnswerQuality,
    SelectivityQuality,
    run_answer_quality,
    run_selectivity,
)
from repro.workload.cache import load_workload, save_workload
from repro.workload.mutations import (
    MutationOp,
    apply_mutation,
    dump_ops,
    load_ops,
    make_mutation_workload,
)

__all__ = [
    "Workload",
    "make_workload",
    "MutationOp",
    "make_mutation_workload",
    "apply_mutation",
    "dump_ops",
    "load_ops",
    "AnswerQuality",
    "SelectivityQuality",
    "run_answer_quality",
    "run_selectivity",
    "save_workload",
    "load_workload",
]
