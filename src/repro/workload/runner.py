"""Running synopses against workloads and scoring them.

Two quality measures, matching the paper's two experiments:

* :func:`run_answer_quality` -- average ESD between true and approximate
  nesting trees (Fig. 11);
* :func:`run_selectivity` -- average sanity-bounded relative selectivity
  error (Figs. 12-13).

Both accept any synopsis with the TreeSketch evaluation interface
(TreeSketch itself, or a TwigXSketch via its answer/estimation functions).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.core.estimate import estimate_selectivity, estimate_selectivity_batch
from repro.core.evaluate import eval_query
from repro.core.expand import ExpansionLimitError, expand_result
from repro.core.qcache import QueryCache, resolve_cache
from repro.core.treesketch import TreeSketch
from repro.engine.nesting import NestingTree
from repro.metrics.esd import ESDCalculator, esd_nesting_trees
from repro.obs import get_clock, get_metrics, get_tracer
from repro.query.twig import TwigQuery
from repro.workload.workload import Workload
from repro.xsketch.answers import sampled_answer
from repro.xsketch.synopsis import TwigXSketch, xsketch_selectivity


@dataclass
class SelectivityQuality:
    """Result of a selectivity run: average error and timing."""

    avg_error: float
    per_query: List[float]
    seconds: float


@dataclass
class AnswerQuality:
    """Result of an answer-quality run: average ESD and timing."""

    avg_esd: float
    per_query: List[float]
    failures: int
    seconds: float


def _estimator_for(
    synopsis, cache: Optional[QueryCache] = None
) -> Callable[[TwigQuery], float]:
    if isinstance(synopsis, TwigXSketch):
        return lambda q: xsketch_selectivity(synopsis, q)
    if isinstance(synopsis, TreeSketch):
        if cache is not None:
            return cache.selectivity
        return lambda q: estimate_selectivity(eval_query(synopsis, q))
    raise TypeError(f"unsupported synopsis type {type(synopsis).__name__}")


def _answerer_for(synopsis, seed: int, max_nodes: int,
                  cache: Optional[QueryCache] = None):
    if isinstance(synopsis, TwigXSketch):
        return lambda q: sampled_answer(synopsis, q, seed=seed, max_nodes=max_nodes)
    if isinstance(synopsis, TreeSketch):
        # Variance-aware expansion: the synopsis' sufficient statistics
        # shape per-occurrence counts (see repro.core.expand).  Cached
        # result sketches are read-only inputs to the expansion.
        if cache is not None:
            return lambda q: expand_result(
                cache.result(q), max_nodes=max_nodes, sketch=synopsis
            )
        return lambda q: expand_result(
            eval_query(synopsis, q), max_nodes=max_nodes, sketch=synopsis
        )
    raise TypeError(f"unsupported synopsis type {type(synopsis).__name__}")


def _score_selectivity(
    estimator: Callable[[TwigQuery], float],
    workload: Workload,
    queries: Optional[Sequence[int]],
) -> SelectivityQuality:
    """The timed selectivity-scoring loop shared by local and remote runs."""
    indices = list(queries) if queries is not None else list(range(len(workload)))
    clock = get_clock()
    latencies = get_metrics().histogram("workload.selectivity.query_seconds")
    truths = workload.truths  # force ground truth outside the timed region
    pairs: List[tuple] = []
    with get_tracer().span("workload.run_selectivity", queries=len(indices)):
        start = clock.now()
        for i in indices:
            q_start = clock.now()
            estimate = estimator(workload.queries[i])
            latencies.observe(clock.now() - q_start)
            pairs.append((float(truths[i]), estimate))
        seconds = clock.now() - start
    get_metrics().counter("workload.selectivity.queries").inc(len(indices))
    from repro.metrics.error import workload_errors

    per_query = workload_errors(pairs)
    return SelectivityQuality(
        avg_error=sum(per_query) / len(per_query),
        per_query=per_query,
        seconds=seconds,
    )


def _score_selectivity_batch(
    results_fn,
    workload: Workload,
    queries: Optional[Sequence[int]],
) -> SelectivityQuality:
    """Batch variant: evaluate per query, estimate in one vectorized pass.

    Per-query latencies cover evaluation only (estimation is amortized
    across the whole slice and reported by the ``estimate.*`` spans).
    """
    indices = list(queries) if queries is not None else list(range(len(workload)))
    clock = get_clock()
    latencies = get_metrics().histogram("workload.selectivity.query_seconds")
    truths = workload.truths  # force ground truth outside the timed region
    with get_tracer().span(
        "workload.run_selectivity", queries=len(indices), batch=True
    ):
        start = clock.now()
        sketches = []
        for i in indices:
            q_start = clock.now()
            sketches.append(results_fn(workload.queries[i]))
            latencies.observe(clock.now() - q_start)
        estimates = estimate_selectivity_batch(sketches)
        seconds = clock.now() - start
    get_metrics().counter("workload.selectivity.queries").inc(len(indices))
    from repro.metrics.error import workload_errors

    pairs = [(float(truths[i]), est) for i, est in zip(indices, estimates)]
    per_query = workload_errors(pairs)
    return SelectivityQuality(
        avg_error=sum(per_query) / len(per_query),
        per_query=per_query,
        seconds=seconds,
    )


def run_selectivity(
    synopsis,
    workload: Workload,
    queries: Optional[Sequence[int]] = None,
    cache: Optional[Union[QueryCache, int]] = None,
    batch: bool = False,
) -> SelectivityQuality:
    """Average sanity-bounded relative error over (a slice of) a workload.

    ``cache`` enables canonical-query LRU caching on TreeSketch synopses:
    pass an int capacity for a fresh :class:`QueryCache` or an existing
    cache to share across runs (ignored for other synopsis types).

    ``batch=True`` scores TreeSketch synopses through
    :func:`estimate_selectivity_batch`: result sketches are still
    evaluated one query at a time (through the cache when given), then
    estimated in a single vectorized pass.  Other synopsis types ignore
    the flag and run sequentially.
    """
    qcache = resolve_cache(synopsis, cache)
    if batch and isinstance(synopsis, TreeSketch):
        if qcache is not None:
            results_fn = qcache.result
        else:
            results_fn = lambda q: eval_query(synopsis, q)  # noqa: E731
        return _score_selectivity_batch(results_fn, workload, queries)
    estimator = _estimator_for(synopsis, qcache)
    return _score_selectivity(estimator, workload, queries)


def run_selectivity_remote(
    client,
    workload: Workload,
    sketch: Optional[str] = None,
    queries: Optional[Sequence[int]] = None,
    deadline_ms: Optional[float] = None,
    request_id_prefix: Optional[str] = None,
) -> SelectivityQuality:
    """Replay a workload against a running serving daemon.

    ``client`` is a :class:`repro.serve.client.ServeClient`; each query
    is sent as an ``estimate`` request (its canonical text form), so the
    scored numbers are exactly what a network caller would see --
    per-query latencies include the wire.  Ground truth is still computed
    locally from the workload's document.  Server-side errors
    (``overloaded``, ``deadline_exceeded``, ...) propagate as
    :class:`repro.serve.client.ServerError`.

    ``request_id_prefix`` tags the replay for end-to-end correlation:
    the n-th request goes out as ``request_id="<prefix>-<n>"``, so the
    matching ``serve.request``/``serve.execute`` spans in the server's
    trace file can be joined back to workload positions.
    """
    sent = itertools.count()

    def estimator(q: TwigQuery) -> float:
        request_id = (f"{request_id_prefix}-{next(sent)}"
                      if request_id_prefix is not None else None)
        return client.estimate(str(q), sketch=sketch,
                               deadline_ms=deadline_ms,
                               request_id=request_id)

    return _score_selectivity(estimator, workload, queries)


def run_answer_quality(
    synopsis,
    workload: Workload,
    queries: Optional[Sequence[int]] = None,
    calculator: Optional[ESDCalculator] = None,
    seed: int = 0,
    max_nodes: int = 3_000_000,
    cache: Optional[Union[QueryCache, int]] = None,
) -> AnswerQuality:
    """Average ESD between true and approximate nesting trees.

    Queries whose approximate answer exceeds ``max_nodes`` are counted in
    ``failures`` and skipped (this parallels the practical cut-off any
    interactive system applies to runaway previews).  ``cache`` is as in
    :func:`run_selectivity` (result sketches cached; expansion still runs
    per call, as it is seed-dependent).
    """
    answerer = _answerer_for(synopsis, seed, max_nodes,
                             resolve_cache(synopsis, cache))
    calc = calculator or ESDCalculator()
    indices = list(queries) if queries is not None else list(range(len(workload)))
    clock = get_clock()
    metrics = get_metrics()
    latencies = metrics.histogram("workload.answer_quality.query_seconds")
    esds: List[float] = []
    failures = 0
    with get_tracer().span("workload.run_answer_quality", queries=len(indices)):
        start = clock.now()
        for i in indices:
            truth: NestingTree = workload.evaluator.evaluate(workload.queries[i])
            q_start = clock.now()
            try:
                approx = answerer(workload.queries[i])
            except ExpansionLimitError:
                failures += 1
                latencies.observe(clock.now() - q_start)
                continue
            # The histogram times answer production only; ESD scoring is
            # harness overhead, not part of the measured system.
            latencies.observe(clock.now() - q_start)
            esds.append(esd_nesting_trees(truth, approx, calculator=calc))
        seconds = clock.now() - start
    metrics.counter("workload.answer_quality.queries").inc(len(indices))
    metrics.counter("workload.answer_quality.failures").inc(failures)
    avg = sum(esds) / len(esds) if esds else float("nan")
    return AnswerQuality(avg_esd=avg, per_query=esds, failures=failures, seconds=seconds)
