"""A query workload bound to one document: queries + ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.stable import StableSummary, build_stable
from repro.engine.exact import ExactEvaluator
from repro.engine.nesting import NestingTree
from repro.query.generator import WorkloadOptions, generate_workload
from repro.query.twig import TwigQuery
from repro.xmltree.tree import XMLTree


@dataclass
class Workload:
    """Queries over one document, with lazily computed ground truth."""

    tree: XMLTree
    stable: StableSummary
    queries: List[TwigQuery]
    _evaluator: Optional[ExactEvaluator] = field(default=None, repr=False)
    _truths: Optional[List[int]] = field(default=None, repr=False)
    _nesting: Optional[List[NestingTree]] = field(default=None, repr=False)

    @property
    def evaluator(self) -> ExactEvaluator:
        if self._evaluator is None:
            self._evaluator = ExactEvaluator(self.tree)
        return self._evaluator

    @property
    def truths(self) -> List[int]:
        """Exact selectivities, computed once."""
        if self._truths is None:
            self._truths = [self.evaluator.selectivity(q) for q in self.queries]
        return self._truths

    @property
    def nesting_trees(self) -> List[NestingTree]:
        """Exact nesting trees, computed once (memory-heavy; use sliced)."""
        if self._nesting is None:
            self._nesting = [self.evaluator.evaluate(q) for q in self.queries]
        return self._nesting

    def avg_binding_tuples(self) -> float:
        """The paper's Table 2 statistic."""
        return sum(self.truths) / len(self.truths)

    def __len__(self) -> int:
        return len(self.queries)


def make_workload(
    tree: XMLTree,
    num_queries: int = 1000,
    seed: int = 0,
    stable: Optional[StableSummary] = None,
    options: Optional[WorkloadOptions] = None,
) -> Workload:
    """Sample a positive workload for a document (Section 6.1)."""
    if stable is None:
        stable = build_stable(tree)
    if options is None:
        options = WorkloadOptions(num_queries=num_queries, seed=seed)
    queries = generate_workload(stable, options)
    return Workload(tree=tree, stable=stable, queries=queries)
