"""Workload persistence: save/load queries with their ground truth.

Paper-scale runs (1000 queries, exact selectivities over large documents)
are worth computing once: ``save_workload`` serializes the twig texts and
truths to JSON, and ``load_workload`` restores a :class:`Workload` against
the same document without re-evaluating anything.  A fingerprint of the
document (element count + label histogram hash) guards against loading a
workload onto the wrong data.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.core.stable import StableSummary, build_stable
from repro.obs import get_metrics
from repro.query.parser import parse_twig
from repro.workload.workload import Workload
from repro.xmltree.tree import XMLTree

_FORMAT_VERSION = 1


def document_fingerprint(tree: XMLTree) -> str:
    """Stable fingerprint of a document's structure (not its identity).

    Hashes the element count plus the sorted label histogram -- cheap, and
    collisions across *different generated data sets* are implausible.
    """
    from collections import Counter

    histogram = Counter(node.label for node in tree)
    payload = json.dumps(
        [len(tree), sorted(histogram.items())], separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def save_workload(workload: Workload, path: str) -> None:
    """Write queries + truths (forcing their computation) to JSON."""
    payload = {
        "format": _FORMAT_VERSION,
        "fingerprint": document_fingerprint(workload.tree),
        "queries": [str(q) for q in workload.queries],
        "truths": list(workload.truths),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    get_metrics().counter("workload.cache.saves").inc()


def load_workload(
    path: str,
    tree: XMLTree,
    stable: Optional[StableSummary] = None,
    verify_fingerprint: bool = True,
) -> Workload:
    """Restore a workload against ``tree`` without recomputing truths.

    A successful load counts as a ``workload.cache.hits``; a format or
    fingerprint rejection counts as a ``workload.cache.misses`` (the
    caller falls back to recomputing ground truth from scratch).
    """
    metrics = get_metrics()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT_VERSION:
        metrics.counter("workload.cache.misses").inc()
        raise ValueError(f"unsupported workload format {payload.get('format')!r}")
    if verify_fingerprint and payload["fingerprint"] != document_fingerprint(tree):
        metrics.counter("workload.cache.misses").inc()
        raise ValueError(
            "workload fingerprint does not match the supplied document; "
            "pass verify_fingerprint=False to override"
        )
    metrics.counter("workload.cache.hits").inc()
    queries = [parse_twig(text) for text in payload["queries"]]
    workload = Workload(
        tree=tree,
        stable=stable if stable is not None else build_stable(tree),
        queries=queries,
    )
    workload._truths = [int(t) for t in payload["truths"]]
    return workload
