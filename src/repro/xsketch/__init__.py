"""Twig-XSketch baseline (Polyzotis, Garofalakis, Ioannidis; ICDE 2004 [18]).

The prior state of the art this paper compares against: a graph synopsis
with per-node *edge histograms* capturing the joint distribution of child
counts across outgoing edges, built top-down by workload-driven refinement
of the label-split graph.  Reimplemented here from the descriptions in
[18] and in Section 6.1 of this paper; see DESIGN.md for the documented
simplifications.

* :mod:`repro.xsketch.atoms` -- the refinement lattice base: the stable
  summary refined by one level of backward (parent-class) context.
* :mod:`repro.xsketch.histogram` -- bucket-capped joint edge histograms.
* :mod:`repro.xsketch.synopsis` -- the :class:`TwigXSketch` structure and
  its selectivity estimator.
* :mod:`repro.xsketch.build` -- greedy workload-driven construction.
* :mod:`repro.xsketch.answers` -- sampling-based approximate answers (the
  generator this paper describes for the comparison of Fig. 11).
"""

from repro.xsketch.synopsis import TwigXSketch, xsketch_selectivity
from repro.xsketch.build import XSketchBuildOptions, build_twig_xsketch
from repro.xsketch.answers import sampled_answer

__all__ = [
    "TwigXSketch",
    "xsketch_selectivity",
    "XSketchBuildOptions",
    "build_twig_xsketch",
    "sampled_answer",
]
