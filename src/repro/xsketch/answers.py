"""Sampling-based approximate answers from a twig-XSketch (Section 6.1).

Twig-XSketches were designed for selectivity estimation only; for the
approximate-answer comparison the paper equips them with a generator that
"traverses the query tree and uses the distribution information of the
recorded edge histograms in order to sample the number of descendants for
each element in the approximate result tree".

We implement that generator on top of the shared synopsis evaluator: the
query is first evaluated into a result sketch (per-edge expected descendant
counts), then expanded occurrence by occurrence, sampling each occurrence's
child count *independently* -- from the node's joint histogram marginal
when the result edge corresponds to a single synopsis edge, and by
stochastic rounding of the expected count otherwise.  Independent
per-element sampling is precisely what loses the sibling-count correlations
that TreeSketch answers preserve, which is the effect Fig. 11 measures.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Tuple

from repro.core.evaluate import ResultSketch, RSKey, eval_query
from repro.core.expand import ExpansionLimitError, satisfaction_fractions
from repro.engine.nesting import NestingTree, NTNode
from repro.query.path import Axis
from repro.query.twig import TwigQuery
from repro.xsketch.synopsis import TwigXSketch


def sampled_answer(
    sketch: TwigXSketch,
    query: TwigQuery,
    seed: int = 0,
    max_nodes: int = 2_000_000,
) -> NestingTree:
    """Approximate nesting tree sampled from a twig-XSketch."""
    result = eval_query(sketch.view(), query)
    return expand_sampled(sketch, result, seed=seed, max_nodes=max_nodes)


def expand_sampled(
    sketch: TwigXSketch,
    result: ResultSketch,
    seed: int = 0,
    max_nodes: int = 2_000_000,
) -> NestingTree:
    """Expand a result sketch with per-occurrence sampled child counts."""
    rng = random.Random(seed)
    budget = [max_nodes]
    single_edge = _single_edge_map(sketch, result)
    # Weight bindings by their solid-constraint satisfaction, as the
    # TreeSketch expansion does, so both techniques answer the same notion
    # of nesting tree.
    sat = satisfaction_fractions(result)

    def draw(parent: RSKey, child: RSKey, avg: float) -> int:
        keep = sat.get(child, 0.0)
        if keep <= 0.0:
            return 0
        direct = single_edge.get((parent, child))
        if direct is not None:
            hist = sketch.hist.get(direct[0])
            if hist is not None and direct[1] in hist.targets:
                dim = hist.targets.index(direct[1])
                vector = hist.sample_vector(rng)
                drawn = int(round(vector[dim]))
                if keep >= 1.0:
                    return drawn
                # Thin each drawn child independently.
                return sum(1 for _ in range(drawn) if rng.random() < keep)
        # Stochastic rounding keeps the expectation at ``avg * keep``.
        effective = avg * keep
        base = math.floor(effective)
        frac = effective - base
        return int(base + (1 if rng.random() < frac else 0))

    def build(key: RSKey) -> NTNode:
        budget[0] -= 1
        if budget[0] < 0:
            raise ExpansionLimitError(
                f"sampled expansion exceeds max_nodes={max_nodes}"
            )
        node = NTNode(label=result.label[key], qvar=key[1])
        for child_key, avg in result.out.get(key, {}).items():
            for _ in range(draw(key, child_key, avg)):
                node.add(build(child_key))
        return node

    root = build(result.root_key)
    return NestingTree(root, result.query)


def _single_edge_map(
    sketch: TwigXSketch, result: ResultSketch
) -> Dict[Tuple[RSKey, RSKey], Tuple[int, int]]:
    """Result edges that correspond to exactly one synopsis edge.

    A result edge ``(u, q) -> (v, q_c)`` maps to synopsis edge ``u -> v``
    when the connecting query path is a single child-axis step and ``v``
    is a direct synopsis child of ``u``; only then is the node's joint
    histogram the exact distribution of the result edge's child counts.
    """
    qnode_of = {n.var: n for n in result.query.nodes}
    mapping: Dict[Tuple[RSKey, RSKey], Tuple[int, int]] = {}
    for parent_key, edges in result.out.items():
        for child_key in edges:
            qnode = qnode_of[child_key[1]]
            path = qnode.path
            if path is None or len(path.steps) != 1:
                continue
            step = path.steps[0]
            if step.axis is not Axis.CHILD:
                continue
            u, v = parent_key[0], child_key[0]
            if v in sketch.out.get(u, {}):
                mapping[(parent_key, child_key)] = (u, v)
    return mapping
