"""The twig-XSketch synopsis structure and selectivity estimation.

A :class:`TwigXSketch` is a graph synopsis (a partition of the atom graph,
see :mod:`repro.xsketch.atoms`) where each node carries its extent size and
a joint :class:`~repro.xsketch.histogram.EdgeHistogram` over its outgoing
edges; per-edge backward-stability flags are recorded as in [18].

Query evaluation reuses the library's synopsis evaluator
(:func:`repro.core.evaluate.eval_query`) through a :class:`TreeSketch` view
whose edge weights are the histogram means, extended with the joint-
histogram capability twig-XSketches have and TreeSketches lack: the
selectivity of a one-step branching predicate is read exactly from the
histogram (``P(child count > 0)``) instead of being assembled from
independence assumptions.  Longer branches fall back to the shared
inclusion-exclusion scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evaluate import eval_query
from repro.core.estimate import estimate_selectivity
from repro.core.size import EDGE_BYTES, NODE_BYTES
from repro.core.treesketch import TreeSketch
from repro.query.path import Axis, Path
from repro.query.twig import TwigQuery
from repro.xsketch.atoms import AtomGraph
from repro.xsketch.histogram import EdgeHistogram


class _XSketchView(TreeSketch):
    """TreeSketch-shaped view of a TwigXSketch for the shared evaluator.

    Implements the ``branch_probability`` hook consulted by
    ``repro.core.evaluate._branch_selectivity``.
    """

    def __init__(self, owner: "TwigXSketch") -> None:
        super().__init__()
        self._owner = owner

    def branch_probability(self, node: int, pred: Path) -> Optional[float]:
        return self._owner.branch_probability(node, pred)


class TwigXSketch:
    """A twig-XSketch synopsis over one document."""

    def __init__(self, root_id: int, doc_height: int) -> None:
        self.label: Dict[int, str] = {}
        self.count: Dict[int, int] = {}
        self.hist: Dict[int, EdgeHistogram] = {}
        self.out: Dict[int, Dict[int, float]] = {}
        # (src, dst) -> backward stable (every src element has a dst child).
        self.backward_stable: Dict[Tuple[int, int], bool] = {}
        self.root_id = root_id
        self.doc_height = doc_height
        self._view: Optional[_XSketchView] = None

    # ------------------------------------------------------------------
    # Construction from a partition of atoms
    # ------------------------------------------------------------------

    @classmethod
    def from_partition(
        cls,
        atoms: AtomGraph,
        assign: Sequence[int],
        bucket_budget: int,
    ) -> "TwigXSketch":
        """Materialize the synopsis induced by an atom partition."""
        clusters: Dict[int, List[int]] = {}
        for aid, cid in enumerate(assign):
            clusters.setdefault(cid, []).append(aid)

        xs = cls(root_id=assign[atoms.root_atom], doc_height=atoms.stable.doc_height)
        for cid, members in clusters.items():
            label = atoms.label[members[0]]
            count = sum(atoms.size[a] for a in members)
            xs.label[cid] = label
            xs.count[cid] = count
            hist = build_cluster_histogram(atoms, assign, members, bucket_budget)
            xs.hist[cid] = hist
            means = {
                t: hist.mean(t) for t in hist.targets if hist.mean(t) > 0
            }
            xs.out[cid] = means
            for dim, t in enumerate(hist.targets):
                if t in means:
                    positive = hist.prob_positive([dim])
                    xs.backward_stable[(cid, t)] = positive >= 1.0 - 1e-12
        return xs

    # ------------------------------------------------------------------
    # Size model
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.label)

    @property
    def num_edges(self) -> int:
        return sum(len(e) for e in self.out.values())

    def size_bytes(self) -> int:
        """Nodes + edges (incl. stability bits) + histogram buckets."""
        total = NODE_BYTES * self.num_nodes + EDGE_BYTES * self.num_edges
        total += sum(h.size_bytes() for h in self.hist.values())
        return total

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def view(self) -> _XSketchView:
        """TreeSketch-shaped view (cached) for the shared evaluator."""
        if self._view is None:
            view = _XSketchView(self)
            for nid, label in self.label.items():
                view.add_node(nid, label, self.count[nid])
            for src, targets in self.out.items():
                count = self.count[src]
                for dst, mean in targets.items():
                    view.add_edge(src, dst, mean)
                    view.stats[(src, dst)] = (count * mean, count * mean * mean)
            view.root_id = self.root_id
            view.doc_height = self.doc_height
            self._view = view
        return self._view

    def branch_probability(self, node: int, pred: Path) -> Optional[float]:
        """Exact P(branch satisfied) for one-step child-axis predicates.

        Returns ``None`` when the predicate is longer than the histogram's
        horizon (the evaluator then falls back to inclusion-exclusion).
        """
        if len(pred.steps) != 1:
            return None
        step = pred.steps[0]
        if step.axis is not Axis.CHILD or step.predicates:
            return None
        hist = self.hist.get(node)
        if hist is None:
            return 0.0
        dims = [
            dim
            for dim, target in enumerate(hist.targets)
            if step.matches_label(self.label.get(target, ""))
        ]
        if not dims:
            return 0.0
        return hist.prob_positive(dims)


def build_cluster_histogram(
    atoms: AtomGraph,
    assign: Sequence[int],
    members: Sequence[int],
    bucket_budget: int,
) -> EdgeHistogram:
    """Joint edge histogram of one cluster, exact from the atom graph.

    Every element of an atom has the same child-count vector toward the
    current clusters, so the histogram is a weighted count over atoms.
    """
    # Collect the dimension set first (stable iteration order by id).
    target_set = set()
    grouped: List[Dict[int, float]] = []
    for aid in members:
        counts: Dict[int, float] = {}
        for child_atom, k in atoms.out[aid]:
            t = assign[child_atom]
            counts[t] = counts.get(t, 0.0) + k
        grouped.append(counts)
        target_set.update(counts)
    targets = sorted(target_set)
    position = {t: i for i, t in enumerate(targets)}

    weighted = []
    for aid, counts in zip(members, grouped):
        vector = [0.0] * len(targets)
        for t, k in counts.items():
            vector[position[t]] = k
        weighted.append((tuple(vector), float(atoms.size[aid])))
    return EdgeHistogram.from_weighted_vectors(targets, weighted, bucket_budget)


def xsketch_selectivity(sketch: TwigXSketch, query: TwigQuery) -> float:
    """Estimated selectivity of a twig query over a twig-XSketch."""
    return estimate_selectivity(eval_query(sketch.view(), query))
