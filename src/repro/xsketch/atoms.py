"""Atoms: the refinement base of twig-XSketch construction.

Twig-XSketch refines the label-split graph by node splits that separate
elements with different *parent* context (backward stability) or different
*child-count* structure (forward/count context).  To score and apply such
splits without touching base data we precompute a fixed refinement base --
the **atom graph**: the count-stable summary refined by one level of
backward context.

An atom ``(s, p)`` stands for the elements of stable class ``s`` whose
parent element belongs to stable class ``p`` (``p = -1`` for the root).
From the stable summary alone we know each atom exactly:

* its size: ``count(p) * k(p, s)`` (every element of ``p`` has ``k(p, s)``
  children in ``s``);
* its out-adjacency: the children of an ``s``-element are elements of
  classes ``t`` *with parent class s*, i.e. atoms ``(t, s)``, with the
  stable counts ``k(s, t)`` -- identical for every element of the atom.

Any twig-XSketch partition in this implementation is a partition of atoms
that respects labels; all histograms over such a partition are exact and
derivable from the atom graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.stable import StableSummary

# Atom identity: (stable class id, parent stable class id or -1 for root).
AtomKey = Tuple[int, int]


@dataclass
class AtomGraph:
    """The atom-level refinement base derived from a stable summary."""

    stable: StableSummary
    keys: List[AtomKey]
    index: Dict[AtomKey, int]
    size: List[int]
    label: List[str]
    # Atom out-adjacency: atom id -> list of (child atom id, exact count k).
    out: List[List[Tuple[int, int]]]
    root_atom: int

    @property
    def num_atoms(self) -> int:
        return len(self.keys)


def build_atom_graph(stable: StableSummary) -> AtomGraph:
    """Derive the atom graph of a document from its stable summary."""
    keys: List[AtomKey] = []
    index: Dict[AtomKey, int] = {}
    size: List[int] = []
    label: List[str] = []

    def intern(key: AtomKey, atom_size: int) -> int:
        aid = index.get(key)
        if aid is None:
            aid = len(keys)
            index[key] = aid
            keys.append(key)
            size.append(atom_size)
            label.append(stable.label[key[0]])
        return aid

    root = intern((stable.root_id, -1), stable.count[stable.root_id])
    for p, s, k in stable.edges():
        intern((s, p), stable.count[p] * int(k))

    out: List[List[Tuple[int, int]]] = [[] for _ in keys]
    for aid, (s, _p) in enumerate(keys):
        for t, k in stable.out.get(s, {}).items():
            child = index[(t, s)]
            out[aid].append((child, int(k)))

    graph = AtomGraph(
        stable=stable,
        keys=keys,
        index=index,
        size=size,
        label=label,
        out=out,
        root_atom=root,
    )
    _check_sizes(graph)
    return graph


def _check_sizes(graph: AtomGraph) -> None:
    """Atoms of one stable class must partition its extent."""
    per_class: Dict[int, int] = {}
    for (s, _p), atom_size in zip(graph.keys, graph.size):
        per_class[s] = per_class.get(s, 0) + atom_size
    for s, total in per_class.items():
        expected = graph.stable.count[s]
        if total != expected:
            raise AssertionError(
                f"atom sizes of class {s} sum to {total}, expected {expected}"
            )
