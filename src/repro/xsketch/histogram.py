"""Bucket-capped joint edge histograms (twig-XSketch, [18]).

For a synopsis node ``u`` with outgoing edges to ``v_1 .. v_n``, the edge
histogram records the joint distribution of per-element child-count vectors
``(c_1, .., c_n)`` over ``extent(u)`` -- e.g. the paper's Fig. 3(d)
histogram ``H_B(b, c)``.  To respect a space budget the histogram keeps the
``bucket_budget - 1`` most frequent vectors exactly and collapses the
remainder into one centroid bucket (mean vector, total weight): the usual
"high-dimensional histograms degrade" effect the paper points out is then
visible as approximation error in the collapsed bucket.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

Vector = Tuple[float, ...]


class EdgeHistogram:
    """Joint child-count distribution of one synopsis node."""

    def __init__(
        self,
        targets: Sequence[int],
        buckets: Dict[Vector, float],
        rest_weight: float = 0.0,
        rest_centroid: Vector = (),
    ) -> None:
        self.targets = tuple(targets)
        self.buckets = buckets
        self.rest_weight = rest_weight
        self.rest_centroid = rest_centroid or (0.0,) * len(self.targets)

    # ------------------------------------------------------------------

    @classmethod
    def from_weighted_vectors(
        cls,
        targets: Sequence[int],
        weighted: Iterable[Tuple[Vector, float]],
        bucket_budget: int,
    ) -> "EdgeHistogram":
        """Build from (vector, weight) pairs, capping at ``bucket_budget``."""
        exact: Dict[Vector, float] = {}
        for vector, weight in weighted:
            exact[vector] = exact.get(vector, 0.0) + weight
        if len(exact) <= bucket_budget:
            return cls(targets, exact)
        # Keep the heaviest budget-1 vectors; collapse the rest.
        ranked = sorted(exact.items(), key=lambda kv: (-kv[1], kv[0]))
        keep = dict(ranked[: bucket_budget - 1])
        rest = ranked[bucket_budget - 1:]
        rest_weight = sum(w for _, w in rest)
        dims = len(tuple(targets))
        centroid = [0.0] * dims
        for vector, weight in rest:
            for i, c in enumerate(vector):
                centroid[i] += c * weight
        centroid_vec = tuple(
            (c / rest_weight) if rest_weight else 0.0 for c in centroid
        )
        return cls(targets, keep, rest_weight, centroid_vec)

    # ------------------------------------------------------------------

    @property
    def total_weight(self) -> float:
        return sum(self.buckets.values()) + self.rest_weight

    @property
    def num_buckets(self) -> int:
        return len(self.buckets) + (1 if self.rest_weight else 0)

    def size_bytes(self) -> int:
        """Each bucket stores one count per dimension plus a weight."""
        return self.num_buckets * 4 * (len(self.targets) + 1)

    def _entries(self) -> Iterable[Tuple[Vector, float]]:
        yield from self.buckets.items()
        if self.rest_weight:
            yield self.rest_centroid, self.rest_weight

    def mean(self, target: int) -> float:
        """Average child count toward one target node."""
        try:
            dim = self.targets.index(target)
        except ValueError:
            return 0.0
        total = self.total_weight
        if not total:
            return 0.0
        acc = sum(vector[dim] * weight for vector, weight in self._entries())
        return acc / total

    def prob_positive(self, target_dims: Sequence[int]) -> float:
        """P(at least one child along any of the given dimensions).

        ``target_dims`` are indexes into ``self.targets``.  This is the
        joint-histogram capability twig-XSketch estimation leans on for
        branching predicates.
        """
        total = self.total_weight
        if not total:
            return 0.0
        hit = sum(
            weight
            for vector, weight in self._entries()
            if any(vector[d] > 0 for d in target_dims)
        )
        return min(1.0, hit / total)

    def sample_vector(self, rng) -> Vector:
        """Draw one child-count vector according to bucket weights."""
        total = self.total_weight
        if not total:
            return (0.0,) * len(self.targets)
        pick = rng.random() * total
        acc = 0.0
        for vector, weight in self._entries():
            acc += weight
            if pick <= acc:
                return vector
        return self.rest_centroid if self.rest_weight else next(iter(self.buckets))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EdgeHistogram(dims={len(self.targets)}, "
            f"buckets={self.num_buckets}, weight={self.total_weight:g})"
        )
