"""Workload-driven twig-XSketch construction ([18]; Section 6.1 here).

Construction starts from the *label-split graph* (one synopsis node per
tag) and greedily refines it with node splits until the space budget is
filled.  Each round:

1. rank clusters by their internal spread (the summed child-count variance
   weighted by extent size -- the clusters whose histograms summarize the
   most heterogeneous structure);
2. propose splits for the top clusters: a backward split (separate atoms
   by parent tag) and forward splits (separate by the dominant child-count
   dimension, or fully by child-count vector when cheap);
3. score every proposal by the average sanity-bounded selectivity error of
   the refined synopsis on a sample query workload -- the expensive
   workload evaluation step that this paper's TSBUILD avoids -- and apply
   the best one.

The partition is over *atoms* (stable classes refined by parent class, see
:mod:`repro.xsketch.atoms`), so histograms stay exact and splits are fast
to apply and undo.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.stable import StableSummary, build_stable
from repro.metrics.error import average_error
from repro.xsketch.atoms import AtomGraph, build_atom_graph
from repro.xsketch.histogram import EdgeHistogram
from repro.xsketch.synopsis import TwigXSketch, build_cluster_histogram, xsketch_selectivity

logger = logging.getLogger(__name__)


@dataclass
class XSketchBuildOptions:
    """Tuning knobs of the baseline's construction."""

    bucket_budget: int = 8        # histogram buckets per synopsis node
    candidate_clusters: int = 6   # clusters examined per round
    sample_size: int = 20         # workload queries used for scoring
    seed: int = 0
    max_rounds: Optional[int] = None


class _Partition:
    """Mutable atom partition with incremental histogram caching."""

    def __init__(self, atoms: AtomGraph, bucket_budget: int) -> None:
        self.atoms = atoms
        self.bucket_budget = bucket_budget
        labels = sorted({lab for lab in atoms.label})
        cid_of_label = {lab: i for i, lab in enumerate(labels)}
        self.assign: List[int] = [cid_of_label[lab] for lab in atoms.label]
        self.members: Dict[int, List[int]] = {}
        for aid, cid in enumerate(self.assign):
            self.members.setdefault(cid, []).append(aid)
        self.next_cid = len(labels)
        self.in_atoms: List[List[int]] = [[] for _ in range(atoms.num_atoms)]
        for aid, targets in enumerate(atoms.out):
            for child, _k in targets:
                self.in_atoms[child].append(aid)
        self._hist: Dict[int, EdgeHistogram] = {}

    # ------------------------------------------------------------------

    def histogram(self, cid: int) -> EdgeHistogram:
        hist = self._hist.get(cid)
        if hist is None:
            hist = build_cluster_histogram(
                self.atoms, self.assign, self.members[cid], self.bucket_budget
            )
            self._hist[cid] = hist
        return hist

    def _invalidate_around(self, atom_ids: Sequence[int]) -> None:
        """Drop cached histograms of the clusters parenting these atoms."""
        parents: Set[int] = set()
        for aid in atom_ids:
            for src in self.in_atoms[aid]:
                parents.add(self.assign[src])
        for cid in parents:
            self._hist.pop(cid, None)

    def split(self, cid: int, groups: Sequence[Sequence[int]]):
        """Split ``cid`` into the given atom groups; returns an undo token."""
        if len(groups) < 2:
            raise ValueError("a split needs at least two groups")
        old_members = self.members[cid]
        evicted = {c: self._hist.get(c) for c in (cid,)}
        new_ids: List[int] = []
        for i, group in enumerate(groups):
            new_cid = cid if i == 0 else self.next_cid
            if i > 0:
                self.next_cid += 1
            new_ids.append(new_cid)
            self.members[new_cid] = list(group)
            for aid in group:
                self.assign[aid] = new_cid
            self._hist.pop(new_cid, None)
        # Parent clusters now see split dimensions; drop their caches.
        parent_cache = {}
        parents: Set[int] = set()
        for aid in old_members:
            for src in self.in_atoms[aid]:
                parents.add(self.assign[src])
        for p in parents:
            if p in self._hist:
                parent_cache[p] = self._hist.pop(p)
        return (cid, old_members, new_ids, evicted, parent_cache)

    def undo(self, token) -> None:
        cid, old_members, new_ids, evicted, parent_cache = token
        for new_cid in new_ids:
            self.members.pop(new_cid, None)
            self._hist.pop(new_cid, None)
        self.members[cid] = old_members
        for aid in old_members:
            self.assign[aid] = cid
        for c, hist in evicted.items():
            if hist is not None:
                self._hist[c] = hist
        for p, hist in parent_cache.items():
            self._hist[p] = hist
        # next_cid is not rolled back; ids are never reused, which is fine.

    # ------------------------------------------------------------------

    def synopsis(self) -> TwigXSketch:
        """Materialize the TwigXSketch of the current partition."""
        xs = TwigXSketch(
            root_id=self.assign[self.atoms.root_atom],
            doc_height=self.atoms.stable.doc_height,
        )
        for cid, members in self.members.items():
            xs.label[cid] = self.atoms.label[members[0]]
            xs.count[cid] = sum(self.atoms.size[a] for a in members)
            hist = self.histogram(cid)
            xs.hist[cid] = hist
            means = {t: hist.mean(t) for t in hist.targets}
            xs.out[cid] = {t: m for t, m in means.items() if m > 0}
            for dim, t in enumerate(hist.targets):
                if t in xs.out[cid]:
                    xs.backward_stable[(cid, t)] = (
                        hist.prob_positive([dim]) >= 1.0 - 1e-12
                    )
        return xs

    def size_bytes(self) -> int:
        return self.synopsis().size_bytes()

    def cluster_spread(self, cid: int) -> float:
        """Weighted child-count variance of a cluster (split-worthiness)."""
        hist = self.histogram(cid)
        total = hist.total_weight
        if not total or hist.num_buckets <= 1:
            return 0.0
        dims = len(hist.targets)
        mean = [0.0] * dims
        meansq = [0.0] * dims
        for vector, weight in hist._entries():
            for i, c in enumerate(vector):
                mean[i] += c * weight
                meansq[i] += c * c * weight
        spread = sum(
            max(0.0, meansq[i] / total - (mean[i] / total) ** 2) for i in range(dims)
        )
        return spread * total


def _proposed_splits(part: _Partition, cid: int) -> List[List[List[int]]]:
    """Candidate atom groupings for splitting one cluster."""
    atoms = part.atoms
    members = part.members[cid]
    if len(members) < 2:
        return []
    proposals: List[List[List[int]]] = []

    # Backward split: separate by parent tag.
    by_parent_tag: Dict[str, List[int]] = {}
    for aid in members:
        _s, p = atoms.keys[aid]
        tag = atoms.stable.label[p] if p >= 0 else "#root"
        by_parent_tag.setdefault(tag, []).append(aid)
    if len(by_parent_tag) > 1:
        proposals.append(list(by_parent_tag.values()))

    # Forward splits need the atom child-count vectors toward clusters.
    vectors: Dict[int, Dict[int, float]] = {}
    for aid in members:
        counts: Dict[int, float] = {}
        for child, k in atoms.out[aid]:
            t = part.assign[child]
            counts[t] = counts.get(t, 0.0) + k
        vectors[aid] = counts

    # Full vector split when there are few distinct vectors.
    by_vector: Dict[Tuple[Tuple[int, float], ...], List[int]] = {}
    for aid in members:
        key = tuple(sorted(vectors[aid].items()))
        by_vector.setdefault(key, []).append(aid)
    if 1 < len(by_vector) <= 4:
        proposals.append(list(by_vector.values()))

    # Median split on the highest-variance dimension.
    dim_stats: Dict[int, List[float]] = {}
    total = sum(atoms.size[a] for a in members)
    for aid in members:
        w = atoms.size[aid]
        for t, c in vectors[aid].items():
            acc = dim_stats.setdefault(t, [0.0, 0.0])
            acc[0] += c * w
            acc[1] += c * c * w
    best_dim, best_var = None, 0.0
    for t, (s, sq) in dim_stats.items():
        var = sq / total - (s / total) ** 2
        if var > best_var:
            best_dim, best_var = t, var
    if best_dim is not None and best_var > 0:
        ranked = sorted(members, key=lambda a: (vectors[a].get(best_dim, 0.0), a))
        acc = 0.0
        cut = None
        for i, aid in enumerate(ranked[:-1]):
            acc += atoms.size[aid]
            boundary = (
                vectors[aid].get(best_dim, 0.0)
                != vectors[ranked[i + 1]].get(best_dim, 0.0)
            )
            if acc >= total / 2 and boundary:
                cut = i + 1
                break
        if cut is None:
            for i, aid in enumerate(ranked[:-1]):
                if (
                    vectors[aid].get(best_dim, 0.0)
                    != vectors[ranked[i + 1]].get(best_dim, 0.0)
                ):
                    cut = i + 1
                    break
        if cut is not None:
            proposals.append([ranked[:cut], ranked[cut:]])

    return proposals


def build_twig_xsketch(
    source,
    budget_bytes: int,
    workload: Sequence,
    truths: Sequence[float],
    options: Optional[XSketchBuildOptions] = None,
    snapshot_budgets: Optional[Sequence[int]] = None,
) -> Dict[int, TwigXSketch]:
    """Build twig-XSketch synopses by greedy workload-driven refinement.

    ``workload``/``truths`` supply the sample twig queries and their exact
    selectivities used for scoring.  Returns a dict mapping each requested
    budget (``snapshot_budgets``, defaulting to ``[budget_bytes]``) to the
    largest synopsis not exceeding it; construction stops at
    ``budget_bytes``.
    """
    opts = options or XSketchBuildOptions()
    stable = source if isinstance(source, StableSummary) else build_stable(source)
    atoms = build_atom_graph(stable)
    part = _Partition(atoms, opts.bucket_budget)

    rng = random.Random(opts.seed)
    indices = list(range(len(workload)))
    rng.shuffle(indices)
    sample_idx = indices[: opts.sample_size]
    sample = [(workload[i], truths[i]) for i in sample_idx]

    budgets = sorted(set(snapshot_budgets or [budget_bytes]))
    # For each budget, remember the assignment of the largest partition that
    # still fits; synopses are materialized from these at the end.
    saved_assign: Dict[int, List[int]] = {}

    def record_snapshots() -> None:
        current = part.size_bytes()
        for b in budgets:
            if current <= b:
                saved_assign[b] = list(part.assign)

    def score() -> float:
        xs = part.synopsis()
        pairs = [(truth, xsketch_selectivity(xs, q)) for q, truth in sample]
        return average_error(pairs)

    rounds = 0
    exhausted: Set[int] = set()
    record_snapshots()
    while part.size_bytes() < budget_bytes:
        if opts.max_rounds is not None and rounds >= opts.max_rounds:
            break
        rounds += 1
        ranked = sorted(
            (c for c in part.members if c not in exhausted),
            key=lambda c: -part.cluster_spread(c),
        )
        candidates = ranked[: opts.candidate_clusters]
        best = None  # (error, -spread, cid, groups)
        progress = False
        for cid in candidates:
            proposals = _proposed_splits(part, cid)
            if not proposals:
                exhausted.add(cid)
                continue
            for groups in proposals:
                token = part.split(cid, groups)
                try:
                    err = score()
                finally:
                    part.undo(token)
                key = (err, cid)
                if best is None or key < best[0]:
                    best = (key, cid, groups)
                progress = True
        if best is None:
            if not progress and len(exhausted) >= len(part.members):
                break
            if not candidates:
                break
            continue
        size_before = part.size_bytes()
        _key, cid, groups = best
        part.split(cid, groups)
        size_after = part.size_bytes()
        if rounds % 25 == 0:
            logger.debug(
                "xsketch: round %d, %d -> %d bytes (budget %d), err %.4f",
                rounds, size_before, size_after, budget_bytes, _key[0],
            )
        record_snapshots()
        if size_after == size_before:
            exhausted.add(cid)

    results: Dict[int, TwigXSketch] = {}
    fallback = None
    for b in budgets:
        assign = saved_assign.get(b)
        if assign is None:
            # Budget below the label-split graph: use the coarsest synopsis.
            if fallback is None:
                coarse = _Partition(atoms, opts.bucket_budget)
                fallback = coarse.synopsis()
            results[b] = fallback
        else:
            results[b] = TwigXSketch.from_partition(atoms, assign, opts.bucket_budget)
    return results
